"""A small, from-scratch XML parser and serialiser.

The paper ingests real XML (DBLP records, INEX articles) with XLink
attributes for citations and cross-references. This module provides the
ingestion path without relying on ``xml.etree``: a recursive-descent
parser producing :class:`ParsedElement` trees, a serialiser, and
:func:`load_collection`, which materialises a set of XML strings into a
:class:`~repro.xmlmodel.model.Collection`, resolving ``id`` /
``xlink:href`` attributes into intra- and inter-document links.

Supported XML subset: elements, attributes (single or double quoted),
text, self-closing tags, comments, CDATA sections, processing
instructions / XML prolog, DOCTYPE declarations (skipped), and the five
predefined entities plus decimal/hex character references. This covers
everything the DBLP/INEX-style documents use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.xmlmodel.model import Collection, ElementId

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}
_REVERSE_TEXT = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_NAME_END = set(" \t\r\n/>=")


class XMLSyntaxError(ValueError):
    """Raised on malformed input; carries the byte offset of the error."""

    def __init__(self, message: str, pos: int) -> None:
        super().__init__(f"{message} (at offset {pos})")
        self.pos = pos


@dataclass
class ParsedElement:
    """A node of the parsed XML tree."""

    tag: str
    attributes: Dict[str, str] = field(default_factory=dict)
    children: List["ParsedElement"] = field(default_factory=list)
    text: str = ""

    def iter(self) -> Iterator["ParsedElement"]:
        """Preorder traversal of the subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find_all(self, tag: str) -> List["ParsedElement"]:
        return [n for n in self.iter() if n.tag == tag]

    @property
    def num_elements(self) -> int:
        return sum(1 for _ in self.iter())


def _decode_entities(raw: str, pos: int) -> str:
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end == -1:
            raise XMLSyntaxError("unterminated entity reference", pos + i)
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", pos + i)
        i = end + 1
    return "".join(out)


#: Maximum element nesting the parser accepts. Real XML rarely exceeds a
#: few dozen levels; the limit turns CPython's RecursionError into a
#: well-formed :class:`XMLSyntaxError` long before the interpreter limit.
MAX_ELEMENT_DEPTH = 200


class _Parser:
    """Single-pass recursive-descent parser over an input string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.n = len(text)
        self.depth = 0

    # -- low-level helpers ------------------------------------------------
    def _error(self, message: str) -> XMLSyntaxError:
        return XMLSyntaxError(message, self.pos)

    def _skip_ws(self) -> None:
        while self.pos < self.n and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def _skip_misc(self) -> None:
        """Skip whitespace, comments, PIs and DOCTYPE between elements."""
        while True:
            self._skip_ws()
            if self.text.startswith("<!--", self.pos):
                end = self.text.find("-->", self.pos + 4)
                if end == -1:
                    raise self._error("unterminated comment")
                self.pos = end + 3
            elif self.text.startswith("<?", self.pos):
                end = self.text.find("?>", self.pos + 2)
                if end == -1:
                    raise self._error("unterminated processing instruction")
                self.pos = end + 2
            elif self.text.startswith("<!DOCTYPE", self.pos):
                end = self.text.find(">", self.pos)
                if end == -1:
                    raise self._error("unterminated DOCTYPE")
                self.pos = end + 1
            else:
                return

    def _read_name(self) -> str:
        start = self.pos
        while self.pos < self.n and self.text[self.pos] not in _NAME_END:
            self.pos += 1
        if self.pos == start:
            raise self._error("expected a name")
        return self.text[start : self.pos]

    def _read_attributes(self) -> Dict[str, str]:
        attrs: Dict[str, str] = {}
        while True:
            self._skip_ws()
            if self.pos >= self.n:
                raise self._error("unexpected end of input inside a tag")
            if self.text[self.pos] in "/>":
                return attrs
            name = self._read_name()
            self._skip_ws()
            if self.pos >= self.n or self.text[self.pos] != "=":
                raise self._error(f"attribute {name!r} missing '='")
            self.pos += 1
            self._skip_ws()
            if self.pos >= self.n or self.text[self.pos] not in "\"'":
                raise self._error(f"attribute {name!r} value must be quoted")
            quote = self.text[self.pos]
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end == -1:
                raise self._error(f"unterminated value for attribute {name!r}")
            attrs[name] = _decode_entities(self.text[self.pos : end], self.pos)
            self.pos = end + 1

    # -- element grammar --------------------------------------------------
    def parse_document(self) -> ParsedElement:
        self._skip_misc()
        if self.pos >= self.n or self.text[self.pos] != "<":
            raise self._error("expected root element")
        root = self._parse_element()
        self._skip_misc()
        if self.pos != self.n:
            raise self._error("content after root element")
        return root

    def _parse_element(self) -> ParsedElement:
        assert self.text[self.pos] == "<"
        self.depth += 1
        if self.depth > MAX_ELEMENT_DEPTH:
            raise self._error(
                f"element nesting exceeds {MAX_ELEMENT_DEPTH} levels"
            )
        self.pos += 1
        tag = self._read_name()
        attrs = self._read_attributes()
        elem = ParsedElement(tag, attrs)
        if self.text.startswith("/>", self.pos):
            self.pos += 2
            self.depth -= 1
            return elem
        if self.text[self.pos] != ">":
            raise self._error(f"malformed start tag <{tag}>")
        self.pos += 1
        text_parts: List[str] = []
        while True:
            if self.pos >= self.n:
                raise self._error(f"unterminated element <{tag}>")
            ch = self.text[self.pos]
            if ch == "<":
                if self.text.startswith("</", self.pos):
                    self.pos += 2
                    close = self._read_name()
                    if close != tag:
                        raise self._error(
                            f"mismatched closing tag </{close}> for <{tag}>"
                        )
                    self._skip_ws()
                    if self.pos >= self.n or self.text[self.pos] != ">":
                        raise self._error(f"malformed closing tag </{close}>")
                    self.pos += 1
                    elem.text = "".join(text_parts).strip()
                    self.depth -= 1
                    return elem
                if self.text.startswith("<!--", self.pos):
                    end = self.text.find("-->", self.pos + 4)
                    if end == -1:
                        raise self._error("unterminated comment")
                    self.pos = end + 3
                elif self.text.startswith("<![CDATA[", self.pos):
                    end = self.text.find("]]>", self.pos + 9)
                    if end == -1:
                        raise self._error("unterminated CDATA section")
                    text_parts.append(self.text[self.pos + 9 : end])
                    self.pos = end + 3
                elif self.text.startswith("<?", self.pos):
                    end = self.text.find("?>", self.pos + 2)
                    if end == -1:
                        raise self._error("unterminated processing instruction")
                    self.pos = end + 2
                else:
                    elem.children.append(self._parse_element())
            else:
                nxt = self.text.find("<", self.pos)
                if nxt == -1:
                    raise self._error(f"unterminated element <{tag}>")
                text_parts.append(
                    _decode_entities(self.text[self.pos : nxt], self.pos)
                )
                self.pos = nxt


def parse_document(text: str) -> ParsedElement:
    """Parse one XML document string into a :class:`ParsedElement` tree.

    Raises:
        XMLSyntaxError: on malformed input.
    """
    return _Parser(text).parse_document()


def _escape_text(value: str) -> str:
    return "".join(_REVERSE_TEXT.get(ch, ch) for ch in value)


def _escape_attr(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


def serialize(elem: ParsedElement, *, indent: Optional[int] = None) -> str:
    """Serialise a parsed tree back to XML text.

    With ``indent`` set, produces pretty-printed output; the default is a
    compact single-line form. Round-trips with :func:`parse_document`
    (modulo insignificant whitespace).
    """
    parts: List[str] = []
    _serialize_into(elem, parts, indent, 0)
    return "".join(parts)


def _serialize_into(
    elem: ParsedElement, parts: List[str], indent: Optional[int], depth: int
) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    nl = "" if indent is None else "\n"
    attrs = "".join(
        f' {name}="{_escape_attr(value)}"' for name, value in elem.attributes.items()
    )
    if not elem.children and not elem.text:
        parts.append(f"{pad}<{elem.tag}{attrs}/>{nl}")
        return
    parts.append(f"{pad}<{elem.tag}{attrs}>")
    if elem.text:
        parts.append(_escape_text(elem.text))
    if elem.children:
        parts.append(nl)
        for child in elem.children:
            _serialize_into(child, parts, indent, depth + 1)
        parts.append(pad)
    parts.append(f"</{elem.tag}>{nl}")


def load_collection(
    documents: Dict[str, str],
    *,
    href_attributes: Tuple[str, ...] = ("xlink:href", "href"),
    id_attribute: str = "id",
) -> Collection:
    """Parse XML strings into a linked :class:`Collection`.

    Link resolution follows the XLink/ID-IDREF convention the paper's
    datasets use: an element with ``xlink:href="docname#elementid"`` (or
    ``href="#elementid"`` for intra-document references) links to the
    element whose ``id`` attribute equals ``elementid`` in the target
    document; a bare ``xlink:href="docname"`` links to the target
    document's root.

    Unresolvable hrefs are ignored (heterogeneous web-style collections
    contain dangling references by nature).

    Args:
        documents: mapping document id -> XML source text.
        href_attributes: attribute names treated as link sources.
        id_attribute: attribute name treated as a link anchor.
    """
    collection = Collection()
    anchors: Dict[Tuple[str, str], ElementId] = {}
    roots: Dict[str, ElementId] = {}
    pending: List[Tuple[ElementId, str, str]] = []  # (source, owner doc, href)

    for doc_id, text in documents.items():
        parsed = parse_document(text)
        root = collection.new_document(doc_id, parsed.tag)
        roots[doc_id] = root.eid
        root.attributes = dict(parsed.attributes)
        root.text = parsed.text
        stack: List[Tuple[ParsedElement, ElementId]] = [(parsed, root.eid)]
        while stack:
            node, eid = stack.pop()
            if id_attribute in node.attributes:
                anchors[(doc_id, node.attributes[id_attribute])] = eid
            for attr in href_attributes:
                if attr in node.attributes:
                    pending.append((eid, doc_id, node.attributes[attr]))
                    break
            for child in node.children:
                element = collection.add_child(eid, child.tag)
                element.attributes = dict(child.attributes)
                element.text = child.text
                stack.append((child, element.eid))

    for source, owner, href in pending:
        if "#" in href:
            target_doc, _, anchor = href.partition("#")
            target_doc = target_doc or owner
            target = anchors.get((target_doc, anchor))
        else:
            target = roots.get(href)
        if target is not None and target != source:
            collection.add_link(source, target)
    return collection
