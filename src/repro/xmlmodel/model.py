"""The paper's formal model of linked XML document collections (Section 2).

* :class:`Element` — one XML element; elements carry dense global integer
  ids, and all index structures operate on those ids.
* :class:`Document` — the element-level tree ``T_E(d)`` plus the set
  ``L_I(d)`` of intra-document links; the element-level graph ``G_E(d)``
  is the tree extended by the intra-links.
* :class:`Collection` — a set of documents plus the set ``L`` of
  inter-document links; exposes the element-level graph ``G_E(X)``, the
  document mapping function ``doc``, and the weighted document-level
  graph ``G_D(X)``.

The model deliberately ignores element order (the paper's rationale: on
schema-less heterogeneous collections nobody queries "the second author
of the fifth reference"), but documents do keep their children lists in
insertion order so that serialisation is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.graph.digraph import DiGraph

ElementId = int
DocId = str
Link = Tuple[ElementId, ElementId]


@dataclass
class Element:
    """One XML element of some document.

    Attributes:
        eid: dense global integer id (unique across the collection).
        tag: the element name.
        doc: id of the owning document.
        parent: id of the parent element, or ``None`` for the root.
        attributes: XML attributes (kept mainly for parsed documents).
        text: concatenated text content directly under the element.
    """

    eid: ElementId
    tag: str
    doc: DocId
    parent: Optional[ElementId] = None
    attributes: Dict[str, str] = field(default_factory=dict)
    text: str = ""


class Document:
    """The element-level tree of one document plus its intra-links."""

    def __init__(self, doc_id: DocId, root: ElementId) -> None:
        self.doc_id = doc_id
        self.root = root
        self.elements: Set[ElementId] = {root}
        self.children: Dict[ElementId, List[ElementId]] = {root: []}
        self.intra_links: Set[Link] = set()

    # -- structure ------------------------------------------------------
    def add_child(self, parent: ElementId, child: ElementId) -> None:
        if parent not in self.elements:
            raise KeyError(f"parent {parent} not in document {self.doc_id}")
        self.elements.add(child)
        self.children[parent].append(child)
        self.children[child] = []

    def add_intra_link(self, source: ElementId, target: ElementId) -> None:
        if source not in self.elements or target not in self.elements:
            raise KeyError("intra-document link endpoints must be in the document")
        self.intra_links.add((source, target))

    @property
    def num_elements(self) -> int:
        return len(self.elements)

    def tree_edges(self) -> Iterator[Link]:
        """Parent-child edges ``E'_E(d)``."""
        for parent, kids in self.children.items():
            for child in kids:
                yield (parent, child)

    def graph_edges(self) -> Iterator[Link]:
        """Edges of the element-level graph ``G_E(d)`` (tree + intra-links)."""
        yield from self.tree_edges()
        yield from self.intra_links

    def element_graph(self) -> DiGraph:
        g = DiGraph()
        for e in self.elements:
            g.add_node(e)
        g.add_edges(self.graph_edges())
        return g

    # -- tree statistics --------------------------------------------------
    def tree_counts(self) -> Dict[ElementId, Tuple[int, int]]:
        """Per-element ``(anc, desc)`` counts within the element-level tree.

        Both counts include the element itself, matching Figure 5 of the
        paper where the root of an 8-element document is annotated
        ``(1, 8)``. Intra-document links are *not* followed — the paper
        annotates tree ancestors/descendants.
        """
        counts: Dict[ElementId, Tuple[int, int]] = {}
        # depth (= #ancestors incl. self) via preorder walk, descendants via
        # postorder accumulation; both iterative.
        anc: Dict[ElementId, int] = {self.root: 1}
        stack = [self.root]
        order: List[ElementId] = []
        while stack:
            v = stack.pop()
            order.append(v)
            for c in self.children[v]:
                anc[c] = anc[v] + 1
                stack.append(c)
        desc: Dict[ElementId, int] = {}
        for v in reversed(order):
            desc[v] = 1 + sum(desc[c] for c in self.children[v])
        for v in self.elements:
            counts[v] = (anc[v], desc[v])
        return counts


class Collection:
    """A collection ``X = (D, L)`` of XML documents with links.

    Element ids are allocated by the collection (dense, global). The
    collection is mutable — documents and links can be added and removed,
    which is what Section 6's incremental maintenance operates on.
    """

    def __init__(self) -> None:
        self.documents: Dict[DocId, Document] = {}
        self.elements: Dict[ElementId, Element] = {}
        self.inter_links: Set[Link] = set()
        self._next_id: ElementId = 0
        # COW bookkeeping: documents shared with a fork sibling (see
        # fork()); a shared document is deep-copied by _own_doc() before
        # its first in-place mutation. Empty outside forks.
        self._shared_docs: Set[DocId] = set()

    # ------------------------------------------------------------------
    # copy-on-write forking
    # ------------------------------------------------------------------
    def fork(self) -> "Collection":
        """A copy-on-write fork of the collection.

        Observationally identical to :meth:`copy` but O(documents)
        instead of O(elements): ``Document`` and ``Element`` objects are
        shared with the fork until a mutation touches them. ``Element``
        objects are immutable after creation (maintenance only ever adds
        or removes whole elements), so only documents need lazy
        privatisation — both siblings mark every document shared and
        deep-copy one on its first structural change.
        """
        clone = Collection.__new__(Collection)
        clone.documents = dict(self.documents)
        clone.elements = dict(self.elements)
        clone.inter_links = set(self.inter_links)
        clone._next_id = self._next_id
        shared = set(self.documents)
        clone._shared_docs = set(shared)
        self._shared_docs = shared
        return clone

    def _own_doc(self, doc_id: DocId) -> Document:
        """``documents[doc_id]``, deep-copied first if still shared with
        a fork sibling."""
        doc = self.documents[doc_id]
        if doc_id in self._shared_docs:
            dup = Document(doc_id, doc.root)
            dup.elements = set(doc.elements)
            dup.children = {p: list(kids) for p, kids in doc.children.items()}
            dup.intra_links = set(doc.intra_links)
            self.documents[doc_id] = doc = dup
            self._shared_docs.discard(doc_id)
        return doc

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _allocate(self, tag: str, doc: DocId, parent: Optional[ElementId]) -> Element:
        e = Element(self._next_id, tag, doc, parent)
        self._next_id += 1
        self.elements[e.eid] = e
        return e

    def new_document(self, doc_id: DocId, root_tag: str = "root") -> Element:
        """Create a document with a fresh root element; returns the root."""
        if doc_id in self.documents:
            raise ValueError(f"document {doc_id!r} already exists")
        root = self._allocate(root_tag, doc_id, None)
        self.documents[doc_id] = Document(doc_id, root.eid)
        return root

    def add_child(self, parent: ElementId, tag: str) -> Element:
        """Append a child element under ``parent``; returns the new element."""
        p = self.elements[parent]
        e = self._allocate(tag, p.doc, parent)
        self._own_doc(p.doc).add_child(parent, e.eid)
        return e

    def add_link(self, source: ElementId, target: ElementId) -> None:
        """Add a link; classified as intra- or inter-document automatically."""
        sdoc = self.elements[source].doc
        tdoc = self.elements[target].doc
        if sdoc == tdoc:
            self._own_doc(sdoc).add_intra_link(source, target)
        else:
            self.inter_links.add((source, target))

    def remove_link(self, source: ElementId, target: ElementId) -> None:
        sdoc = self.elements[source].doc
        tdoc = self.elements[target].doc
        if sdoc == tdoc:
            doc = self.documents[sdoc]
            if (source, target) in doc.intra_links:
                self._own_doc(sdoc).intra_links.discard((source, target))
        else:
            self.inter_links.discard((source, target))

    def remove_document(self, doc_id: DocId) -> Set[ElementId]:
        """Remove a document, its elements, and all incident inter-links.

        Returns:
            The set of element ids that were removed.
        """
        doc = self.documents.pop(doc_id)
        self._shared_docs.discard(doc_id)
        removed = set(doc.elements)
        for e in removed:
            del self.elements[e]
        self.inter_links = {
            (u, v)
            for (u, v) in self.inter_links
            if u not in removed and v not in removed
        }
        return removed

    # ------------------------------------------------------------------
    # the formal model's derived objects
    # ------------------------------------------------------------------
    def doc(self, eid: ElementId) -> DocId:
        """The document mapping function ``doc: V_E(X) -> D``."""
        return self.elements[eid].doc

    def all_links(self) -> Iterator[Link]:
        """``L(X)`` — inter-document links plus every intra-document link."""
        yield from self.inter_links
        for d in self.documents.values():
            yield from d.intra_links

    def element_graph(self) -> DiGraph:
        """The element-level graph ``G_E(X)`` of the whole collection."""
        g = DiGraph()
        for e in self.elements:
            g.add_node(e)
        for d in self.documents.values():
            g.add_edges(d.graph_edges())
        g.add_edges(self.inter_links)
        return g

    def document_graph(self) -> DiGraph:
        """The document-level graph ``G_D(X)``.

        An edge ``(d_i, d_j)`` exists iff some inter-document link goes
        from an element of ``d_i`` to an element of ``d_j``.
        """
        g = DiGraph()
        for doc_id in self.documents:
            g.add_node(doc_id)
        for u, v in self.inter_links:
            g.add_edge(self.doc(u), self.doc(v))
        return g

    def document_link_counts(self) -> Dict[Tuple[DocId, DocId], int]:
        """Edge weights of ``G_D(X)``: number of links per document pair.

        This is the paper's original edge-weight function for the
        partitioner (Section 3.3); Section 4.3's ``A*D`` / ``A+D``
        weights are computed by :mod:`repro.core.skeleton`.
        """
        counts: Dict[Tuple[DocId, DocId], int] = {}
        for u, v in self.inter_links:
            key = (self.doc(u), self.doc(v))
            counts[key] = counts.get(key, 0) + 1
        return counts

    def document_weights(self) -> Dict[DocId, int]:
        """Node weights of ``G_D(X)``: number of elements per document."""
        return {d.doc_id: d.num_elements for d in self.documents.values()}

    def subcollection(self, doc_ids: Iterable[DocId]) -> "Collection":
        """The subcollection induced by ``doc_ids`` (a partition, Section 2).

        Documents are shared by reference (they are not copied); only
        inter-links with both endpoints inside are kept. Element ids are
        preserved, so covers computed on partitions can be unioned.
        """
        keep = set(doc_ids)
        sub = Collection()
        for doc_id in keep:
            doc = self.documents[doc_id]
            sub.documents[doc_id] = doc
            for e in doc.elements:
                sub.elements[e] = self.elements[e]
        sub.inter_links = {
            (u, v)
            for (u, v) in self.inter_links
            if self.doc(u) in keep and self.doc(v) in keep
        }
        sub._next_id = self._next_id
        return sub

    def copy(self) -> "Collection":
        """A structurally independent deep copy of the collection.

        Unlike :meth:`subcollection` (which shares ``Document`` objects
        for cheap partitioning), the copy owns fresh ``Document`` and
        ``Element`` objects, so maintenance on the copy never leaks into
        the original — this is what lets the service layer mutate a
        shadow collection while readers keep answering on the published
        one. Element ids are preserved.
        """
        fresh = Collection()
        for doc_id, doc in self.documents.items():
            dup = Document(doc_id, doc.root)
            dup.elements = set(doc.elements)
            dup.children = {p: list(kids) for p, kids in doc.children.items()}
            dup.intra_links = set(doc.intra_links)
            fresh.documents[doc_id] = dup
        for eid, e in self.elements.items():
            fresh.elements[eid] = Element(
                e.eid, e.tag, e.doc, e.parent, dict(e.attributes), e.text
            )
        fresh.inter_links = set(self.inter_links)
        fresh._next_id = self._next_id
        return fresh

    # ------------------------------------------------------------------
    # statistics (Table 1)
    # ------------------------------------------------------------------
    @property
    def num_documents(self) -> int:
        return len(self.documents)

    @property
    def num_elements(self) -> int:
        return len(self.elements)

    @property
    def num_links(self) -> int:
        """``|L(X)|`` — inter-document plus intra-document links."""
        return len(self.inter_links) + sum(
            len(d.intra_links) for d in self.documents.values()
        )

    def elements_of(self, doc_id: DocId) -> Set[ElementId]:
        return self.documents[doc_id].elements

    def tags(self) -> Dict[str, List[ElementId]]:
        """Inverted tag index: tag name -> sorted element ids."""
        index: Dict[str, List[ElementId]] = {}
        for e in self.elements.values():
            index.setdefault(e.tag, []).append(e.eid)
        for ids in index.values():
            ids.sort()
        return index

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Collection(docs={self.num_documents}, elements={self.num_elements}, "
            f"links={self.num_links})"
        )
