"""XML substrate: data model, parser, and synthetic collection generators.

Implements Section 2 of the paper: element-level trees ``T_E(d)``,
element-level graphs ``G_E(d)`` / ``G_E(X)`` (trees plus intra-document
links), collections ``X = (D, L)`` with inter-document links, the
document mapping function ``doc``, and the document-level graph
``G_D(X)``.
"""

from repro.xmlmodel.model import Collection, Document, Element
from repro.xmlmodel.parser import (
    ParsedElement,
    XMLSyntaxError,
    load_collection,
    parse_document,
    serialize,
)
from repro.xmlmodel.generator import (
    dblp_like,
    inex_like,
    random_collection,
)
from repro.xmlmodel.export import (
    collection_size_bytes,
    export_collection,
    export_document,
)

__all__ = [
    "collection_size_bytes",
    "export_collection",
    "export_document",
    "Collection",
    "Document",
    "Element",
    "ParsedElement",
    "XMLSyntaxError",
    "load_collection",
    "parse_document",
    "serialize",
    "dblp_like",
    "inex_like",
    "random_collection",
]
