"""Export model documents back to XML text.

Used by the Table-1 benchmark to report collection sizes in bytes (the
paper reports 13.2 MB for its DBLP subset and 534 MB for INEX), and by
tests to round-trip generated collections through the parser.
"""

from __future__ import annotations

from typing import Dict

from repro.xmlmodel.model import Collection, DocId, ElementId
from repro.xmlmodel.parser import ParsedElement, serialize


def export_document(collection: Collection, doc_id: DocId) -> ParsedElement:
    """Rebuild the :class:`ParsedElement` tree of one document.

    Link anchors and references are materialised as ``id`` and
    ``xlink:href`` attributes so that the exported XML parses back into
    an isomorphic collection (same trees, same links).
    """
    doc = collection.documents[doc_id]

    link_sources: Dict[ElementId, ElementId] = {}
    anchor_ids: Dict[ElementId, str] = {}
    for u, v in list(doc.intra_links) + [
        (u, v) for (u, v) in collection.inter_links if collection.doc(u) == doc_id
    ]:
        link_sources[u] = v
    for u, v in collection.all_links():
        anchor_ids.setdefault(v, f"e{v}")

    def build(eid: ElementId) -> ParsedElement:
        element = collection.elements[eid]
        attrs = dict(element.attributes)
        if eid in anchor_ids:
            attrs.setdefault("id", anchor_ids[eid])
        if eid in link_sources:
            target = link_sources[eid]
            tdoc = collection.doc(target)
            anchor = anchor_ids.get(target, f"e{target}")
            if tdoc == doc_id:
                attrs["xlink:href"] = f"#{anchor}"
            elif target == collection.documents[tdoc].root:
                attrs["xlink:href"] = tdoc
            else:
                attrs["xlink:href"] = f"{tdoc}#{anchor}"
        node = ParsedElement(element.tag, attrs, text=element.text)
        node.children = [build(c) for c in doc.children[eid]]
        return node

    return build(doc.root)


def export_collection(collection: Collection) -> Dict[DocId, str]:
    """Serialise every document; suitable for feeding ``load_collection``."""
    return {
        doc_id: serialize(export_document(collection, doc_id), indent=1)
        for doc_id in collection.documents
    }


def collection_size_bytes(collection: Collection) -> int:
    """Total size of the serialised collection in bytes (Table 1's 'size')."""
    return sum(
        len(text.encode("utf-8")) for text in export_collection(collection).values()
    )
