"""HOPI: a 2-hop connection index for complex XML document collections.

Reproduction of Schenkel, Theobald, Weikum — "Efficient Creation and
Incremental Maintenance of the HOPI Index for Complex XML Document
Collections", ICDE 2005.

Public entry points:

* :class:`repro.core.HopiIndex` — build, query and maintain an index;
* :mod:`repro.xmlmodel` — collections, the XML parser, generators;
* :class:`repro.query.QueryEngine` — ``//``-path expressions with
  ``~tag`` similarity and distance ranking;
* :mod:`repro.storage` — the SQLite LIN/LOUT persistence layer;
* ``python -m repro`` — the command-line interface.
"""

from repro.core.hopi import HopiIndex
from repro.xmlmodel.model import Collection

__version__ = "1.0.0"

__all__ = ["HopiIndex", "Collection", "__version__"]
