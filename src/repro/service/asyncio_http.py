"""Asyncio ``/v1`` front end with admission control and backpressure.

``ThreadingHTTPServer`` spawns one thread per connection; under an
open-loop burst of cold queries those threads convoy on the GIL and
the accept queue, and tail latency explodes (the 25000x p99/p50 gap
``BENCH_service.json`` recorded). This front end replaces the
thread-per-connection model with:

* **one event loop** owning every socket — accept, parse and response
  writes never wait on query evaluation;
* **a bounded worker pool** (``max_inflight`` threads) running the
  CPU-bound dispatch — the service's lock-free epoch-pinned read path,
  single-flight coalescing and hot-swap semantics are untouched
  because the pool calls the exact same
  :class:`~repro.service.api.ServiceAPI` the threaded front end uses;
* **admission control**: at most ``max_inflight`` requests evaluate
  while at most ``queue_depth`` more wait for a pool slot; anything
  beyond that is *shed* immediately with a structured **429**
  ``{"error": {"code": "overloaded"}}`` — the client learns in
  microseconds instead of queueing unboundedly. Every shed response
  (429 and 503) carries a ``Retry-After`` header and a
  ``retry_after_seconds`` field in the error body, sized to the
  current queue backlog;
* **per-client fairness**: requests are attributed to a client key
  (``X-Client-Id`` header, falling back to the peer address) and one
  key may hold at most ``max_client_share`` of the admission window —
  a single flooding client is shed (429, ``shed_client_cap``) while
  well-behaved clients keep being admitted;
* **per-endpoint timeouts**: a request that exceeds its endpoint's
  deadline answers a structured **503** ``{"error": {"code":
  "overloaded"}}`` (the evaluation thread finishes in the background
  and still warms the cache — only the response is given up on);
* **control-plane exemption**: ``/v1/healthz`` and ``/v1/metrics``
  run on a dedicated two-thread pool with no admission gate, so
  operators can always see queue depth, shed counts and per-shard
  reachability — even mid-overload, even with a shard down.

Admission-control state machine (one request)::

    arrive ──► inflight < max_inflight + queue_depth? ──no──► SHED (429)
                    │ yes
                    ▼
               ADMITTED (inflight += 1; runs when a pool slot frees —
                    │     waiting requests are the queue, depth =
                    │     max(0, inflight - max_inflight))
                    ▼
               deadline hit? ──yes──► TIMEOUT (503; worker finishes
                    │ no                       in background)
                    ▼
               ANSWERED (inflight -= 1)

The shared :class:`~repro.service.telemetry.Telemetry` instance
records every transition (``shed_queue_full`` / ``shed_timeout``
counters, ``queue_depth`` / ``inflight`` gauges, per-endpoint latency
histograms), all reported by ``/v1/metrics``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.api import CONTROL_ROUTES, ServiceAPI, error_payload, route
from repro.service.service import QueryService
from repro.service.telemetry import Telemetry

#: default worker threads evaluating queries concurrently
DEFAULT_MAX_INFLIGHT = 8
#: default extra requests allowed to wait for a worker slot
DEFAULT_QUEUE_DEPTH = 64
#: default cap on one client key's share of the admission window
DEFAULT_MAX_CLIENT_SHARE = 0.5

#: per-endpoint deadlines (seconds); ``update`` is generous because an
#: abandoned update still publishes — better to wait than to answer 503
#: for a batch that will land anyway
DEFAULT_TIMEOUTS: Dict[str, float] = {
    "query": 30.0,
    "count": 30.0,
    "explain": 15.0,
    "connected": 15.0,
    "distance": 15.0,
    "update": 120.0,
    "stats": 15.0,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_MAX_HEADER_LINE = 64 * 1024
#: request bodies beyond this are rejected rather than buffered
MAX_BODY_BYTES = 64 * 1024 * 1024


class AsyncServiceServer:
    """The asyncio front end of one :class:`QueryService` (or router).

    Construct, then either ``await start()`` inside a running loop or
    use :func:`serve` / :func:`start_in_thread` from synchronous code.

    Args:
        service: the service (or :class:`~repro.service.shard.ShardRouter`)
            to publish; shared with the endpoint core.
        max_inflight: worker threads evaluating requests concurrently.
        queue_depth: additional admitted requests allowed to wait for a
            worker slot before new arrivals are shed with 429.
        max_client_share: fraction of the admission window
            (``max_inflight + queue_depth``) one client key may occupy
            before its requests are shed with 429 — keeps a flooding
            client from starving everyone else.
        timeouts: per-endpoint deadline overrides (seconds; merged over
            :data:`DEFAULT_TIMEOUTS`; ``None`` disables the deadline).
        telemetry: shared telemetry sink (one is created if omitted).
        max_requests: close the server after answering this many
            requests (smoke tests/CI; ``None`` serves forever).
    """

    def __init__(
        self,
        service: QueryService,
        *,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_client_share: float = DEFAULT_MAX_CLIENT_SHARE,
        timeouts: Optional[Dict[str, Optional[float]]] = None,
        telemetry: Optional[Telemetry] = None,
        verbose: bool = False,
        max_requests: Optional[int] = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        if not 0.0 < max_client_share <= 1.0:
            raise ValueError(
                f"max_client_share must be in (0, 1], got {max_client_share}"
            )
        self.service = service
        self.max_inflight = max_inflight
        self.queue_depth = queue_depth
        self.max_client_share = max_client_share
        self.client_cap = max(
            1, int((max_inflight + queue_depth) * max_client_share)
        )
        self.timeouts = dict(DEFAULT_TIMEOUTS)
        if timeouts:
            self.timeouts.update(timeouts)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.api = ServiceAPI(service, telemetry=self.telemetry)
        self.verbose = verbose
        self.max_requests = max_requests

        self._inflight = 0
        # client key -> admitted requests; only touched on the event
        # loop thread, so no lock is needed
        self._per_client: Dict[str, int] = {}
        self._answered = 0
        self._pool = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-async-worker"
        )
        # control plane: tiny, un-gated, so healthz/metrics stay live
        # even when every worker slot and queue slot is busy
        self._control_pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-async-control"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._done: Optional[asyncio.Event] = None
        self.telemetry.set_gauge("inflight", lambda: self._inflight)
        self.telemetry.set_gauge(
            "queue_depth", lambda: max(0, self._inflight - self.max_inflight)
        )
        self.telemetry.set_gauge("max_inflight", max_inflight)
        self.telemetry.set_gauge("queue_limit", queue_depth)
        self.telemetry.set_gauge("client_cap", self.client_cap)

    # -- lifecycle -------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind the listening socket; returns ``(host, port)``."""
        self._done = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        return self.address

    async def wait_closed(self) -> None:
        """Serve until :meth:`shutdown` (or ``max_requests``) fires."""
        assert self._done is not None, "start() first"
        await self._done.wait()
        await self._teardown()

    def shutdown(self) -> None:
        """Request shutdown (safe to call from the event loop)."""
        if self._done is not None:
            self._done.set()

    async def _teardown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False)
        self._control_pool.shutdown(wait=False)

    # -- HTTP transport --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._answer(reader, writer, *request)
                self._answered += 1
                if self.max_requests is not None and self._answered >= self.max_requests:
                    self.shutdown()
                    break
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str]]]:
        """Parse one request head: ``(method, target, headers)``."""
        try:
            line = await reader.readline()
        except (ConnectionError, OSError):  # pragma: no cover - races
            return None
        if not line or len(line) > _MAX_HEADER_LINE:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) < 2:
            return None
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            if len(header) > _MAX_HEADER_LINE:
                return None
            key, _, value = header.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        return method, target, headers

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        keep_alive: bool = True,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "OK")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        if extra_headers:
            lines.extend(f"{k}: {v}" for k, v in extra_headers.items())
        if not keep_alive:
            lines.append("Connection: close")
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + body)

    async def _answer(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
    ) -> bool:
        """Dispatch one request; returns whether to keep the connection."""
        url = urlparse(target)
        v1 = url.path.startswith("/v1/")
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close"

        if method not in ("GET", "POST"):
            self._write_response(
                writer, 501,
                error_payload("not_implemented",
                              f"unsupported method {method!r}", v1=v1),
                keep_alive=False,
            )
            return False

        body: Optional[Any] = None
        if method == "POST":
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                self._write_response(
                    writer, 400,
                    error_payload("bad_request",
                                  "invalid Content-Length header", v1=v1),
                    keep_alive=keep_alive,
                )
                return keep_alive
            if length > MAX_BODY_BYTES:
                self._write_response(
                    writer, 400,
                    error_payload("bad_request",
                                  f"request body too large ({length} bytes)",
                                  v1=v1),
                    keep_alive=False,
                )
                return False
            raw = b""
            if length > 0:
                try:
                    raw = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    return False
            try:
                body = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError as exc:
                self._write_response(
                    writer, 400,
                    error_payload(
                        "bad_request",
                        f"request body is not valid JSON: {exc}", v1=v1,
                    ),
                    keep_alive=keep_alive,
                )
                return keep_alive

        params = parse_qs(url.query)
        client = headers.get("x-client-id")
        if not client:
            peer = writer.get_extra_info("peername")
            client = peer[0] if isinstance(peer, (tuple, list)) and peer else "?"
        status, payload = await self._dispatch(url.path, params, body, client)
        extra_headers = None
        if isinstance(payload, dict):
            hint = payload.get("retry_after_seconds")
            if hint is not None:
                extra_headers = {"Retry-After": str(hint)}
        self._write_response(
            writer, status, payload,
            keep_alive=keep_alive, extra_headers=extra_headers,
        )
        await _drain_quietly(writer)
        if self.verbose:  # pragma: no cover - interactive logging
            print(f"{method} {target} -> {status}", flush=True)
        return keep_alive

    # -- admission control + dispatch ------------------------------------
    def _retry_after(self) -> int:
        """Whole-seconds backoff hint for shed responses.

        Rough time for the current backlog to drain — one queue's worth
        of work per ``max_inflight`` workers, floored at one second so
        clients never busy-spin on the hint.
        """
        queued = max(0, self._inflight - self.max_inflight)
        return max(1, -(-queued // max(1, self.max_inflight)))

    async def _dispatch(
        self,
        url_path: str,
        params: Dict[str, list],
        body: Optional[Any],
        client: str = "?",
    ) -> Tuple[int, Dict[str, Any]]:
        """Admission-control one request, then run the shared core.

        Control-plane endpoints bypass the gate entirely; everything
        else is shed with a structured 429 when the queue (or the
        caller's fair share of it) is full and a structured 503 when
        its endpoint deadline passes. Shed responses carry a
        ``retry_after_seconds`` hint mirrored into the ``Retry-After``
        header by the transport.
        """
        name, v1 = route(url_path)
        loop = asyncio.get_running_loop()

        if name in CONTROL_ROUTES:
            return await loop.run_in_executor(
                self._control_pool, self.api.dispatch, url_path, params, body
            )

        if self._inflight >= self.max_inflight + self.queue_depth:
            self.telemetry.counter("shed_queue_full")
            self.telemetry.observe(name or "unknown", 0.0, 429)
            return 429, {
                "error": {
                    "code": "overloaded",
                    "message": (
                        f"request queue full ({self.max_inflight} in flight "
                        f"+ {self.queue_depth} queued); retry later"
                    ),
                },
                "retry": True,
                "retry_after_seconds": self._retry_after(),
            }

        if self._per_client.get(client, 0) >= self.client_cap:
            self.telemetry.counter("shed_client_cap")
            self.telemetry.observe(name or "unknown", 0.0, 429)
            return 429, {
                "error": {
                    "code": "overloaded",
                    "message": (
                        f"client {client!r} holds its full admission share "
                        f"({self.client_cap} requests); retry later"
                    ),
                },
                "retry": True,
                "retry_after_seconds": self._retry_after(),
            }

        timeout = self.timeouts.get(name) if name is not None else 15.0
        self._inflight += 1
        self._per_client[client] = self._per_client.get(client, 0) + 1
        t0 = time.perf_counter()
        try:
            future = loop.run_in_executor(
                self._pool, self.api.dispatch, url_path, params, body
            )
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self.telemetry.counter("shed_timeout")
            self.telemetry.observe(
                name or "unknown", time.perf_counter() - t0, 503
            )
            return 503, {
                "error": {
                    "code": "overloaded",
                    "message": (
                        f"{url_path} missed its {timeout}s deadline under "
                        "load; retry later"
                    ),
                },
                "retry": True,
                "retry_after_seconds": self._retry_after(),
            }
        finally:
            self._inflight -= 1
            remaining = self._per_client.get(client, 1) - 1
            if remaining <= 0:
                self._per_client.pop(client, None)
            else:
                self._per_client[client] = remaining


async def _drain_quietly(writer: asyncio.StreamWriter) -> None:
    try:
        await writer.drain()
    except (ConnectionError, OSError):  # pragma: no cover - client gone
        pass


class AsyncServerHandle:
    """A running async front end on a background event-loop thread.

    Returned by :func:`start_in_thread`; used by tests and the bench
    harness, which are synchronous. ``base_url`` points at the bound
    ephemeral port; :meth:`close` stops the loop and joins the thread.
    Usable as a context manager.
    """

    def __init__(
        self,
        server: AsyncServiceServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
        address: Tuple[str, int],
    ) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread
        self.address = address
        self.base_url = f"http://{address[0]}:{address[1]}"

    @property
    def telemetry(self) -> Telemetry:
        return self.server.telemetry

    def close(self) -> None:
        """Stop serving and join the event-loop thread."""
        if self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.shutdown)
        self.thread.join(timeout=10.0)

    def __enter__(self) -> "AsyncServerHandle":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def start_in_thread(
    service: QueryService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: Any,
) -> AsyncServerHandle:
    """Run an async front end on a daemon thread; returns its handle.

    The event loop, socket and worker pools all live on the background
    thread; the caller gets ``handle.base_url`` once the socket is
    bound (or the startup exception re-raised, e.g. port in use).
    ``kwargs`` forward to :class:`AsyncServiceServer`.
    """
    server = AsyncServiceServer(service, **kwargs)
    started = threading.Event()
    box: Dict[str, Any] = {}
    loop = asyncio.new_event_loop()

    def _run() -> None:
        asyncio.set_event_loop(loop)

        async def _main() -> None:
            try:
                box["address"] = await server.start(host, port)
            except Exception as exc:  # pragma: no cover - bind races
                box["error"] = exc
                return
            finally:
                started.set()
            await server.wait_closed()

        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    thread = threading.Thread(
        target=_run, name="repro-async-server", daemon=True
    )
    thread.start()
    started.wait(timeout=10.0)
    if "error" in box:
        thread.join(timeout=5.0)
        raise box["error"]
    if "address" not in box:
        raise RuntimeError("async server failed to start within 10s")
    return AsyncServerHandle(server, loop, thread, box["address"])


def serve(
    service: QueryService,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    **kwargs: Any,
) -> Tuple[str, int]:
    """Blocking entry point for ``repro serve --async``.

    Binds, prints nothing (the CLI owns messaging), and serves until
    KeyboardInterrupt or ``max_requests``. Returns the bound address
    (useful when ``port=0``).
    """
    server = AsyncServiceServer(service, **kwargs)

    async def _main() -> Tuple[str, int]:
        address = await server.start(host, port)
        try:
            await server.wait_closed()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            await server._teardown()
            raise
        return address

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return (host, port)
