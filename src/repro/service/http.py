"""Stdlib HTTP front end for :class:`~repro.service.service.QueryService`.

``ThreadingHTTPServer`` gives one thread per connection; every handler
thread goes through the service's lock-free read path, so concurrent
clients share the caches and the published epoch exactly like in-process
readers.

The API is versioned under ``/v1`` (all JSON):

=============================  ============================================
``GET /v1/query``              ``path`` (required), ``limit`` (≥ 1),
                               ``offset`` (≥ 0) — ranked matches with
                               pagination metadata (``total``,
                               ``next_offset``, and ``truncated`` when
                               the ranked list hit the service's
                               ``max_results`` cap, in which case
                               ``total`` is a lower bound — use
                               ``/v1/count`` for the exact number)
``GET /v1/count``              ``path`` — unranked total match count
``GET /v1/explain``            ``path`` (+ optional ``mode`` —
                               ``evaluate``/``stream``/``count``/
                               ``exists``) — the physical plan that would
                               run (estimates, join order/directions)
``GET /v1/connected``          ``source``, ``target`` — reachability test
``GET /v1/distance``           ``source``, ``target`` — shortest link
                               distance
``POST /v1/update``            body ``{"ops": [...]}`` — atomic
                               maintenance batch + hot swap (see
                               ``QueryService.update``)
``GET /v1/stats``              service counters, cache stats, epoch
``GET /v1/healthz``            liveness/readiness: epoch age, and —
                               when serving sharded — per-shard
                               reachability; 200 when ``status`` is
                               ``ok``, 503 when ``degraded``
=============================  ============================================

When the server fronts a :class:`~repro.service.shard.ShardRouter`, a
request that cannot be answered because a shard is unreachable gets a
structured **503**::

    {"error": {"code": "shard_unavailable", "message": "..."},
     "degraded": true, "shards_down": [...]}

``/v1`` errors are structured objects::

    {"error": {"code": "bad_request" | "not_found" | "internal",
               "message": "..."}}

The original un-versioned routes (``/query`` … ``/stats``; everything
except ``/explain``) keep working as **deprecated aliases**: they
answer with the legacy flat shapes plus a ``"deprecated": true`` field
(including the legacy ``limit=0`` → empty 200 contract — only ``/v1``
rejects a zero limit), and every hit is counted in the service's
``legacy_hits`` stats so operators can watch migrations drain.

Every response carries the ``epoch`` that answered it, so clients can
observe hot swaps. To add an endpoint: write a ``_handle_<name>``
method on :class:`ServiceRequestHandler` returning ``(status, payload)``
and list it in ``V1_ROUTES`` (and ``LEGACY_ROUTES`` if it should also
answer un-versioned).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.query.pathexpr import PathSyntaxError
from repro.service.service import QueryService, UpdateError
from repro.service.shard import ShardUnavailableError

JSON = "application/json"

#: endpoints served under ``/v1/<name>``
V1_ROUTES = frozenset(
    {"query", "count", "explain", "connected", "distance", "update",
     "stats", "healthz"}
)
#: endpoints also served un-versioned, as deprecated aliases
LEGACY_ROUTES = frozenset(
    {"query", "count", "connected", "distance", "update", "stats"}
)


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP front end for one :class:`QueryService`.

    Routing is by path segment (``/v1/query`` and the deprecated alias
    ``/query`` → ``_handle_query`` etc.); ``_dispatch`` owns JSON
    encoding and error mapping (domain errors → 400, unknown routes →
    404 — structured error objects on ``/v1``, legacy flat strings on
    aliases). See ARCHITECTURE.md for how to add an endpoint.
    """

    server_version = "repro-hopi"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    @property
    def service(self) -> QueryService:
        """The :class:`QueryService` the enclosing server publishes."""
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        """Per-request logging, silenced unless the server is verbose."""
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", JSON)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, code: str, message: str,
                    *, v1: bool) -> None:
        """Errors: structured ``{"error": {code, message}}`` on /v1,
        the legacy flat ``{"error": message}`` on deprecated aliases."""
        if v1:
            self._send_json(status, {"error": {"code": code,
                                               "message": message}})
        else:
            self._send_json(status, {"error": message, "deprecated": True})

    def _param(self, params: Dict[str, list], name: str) -> str:
        values = params.get(name)
        if not values:
            raise UpdateError(f"missing query parameter {name!r}")
        return values[0]

    def _int_param(
        self,
        params: Dict[str, list],
        name: str,
        *,
        minimum: Optional[int] = None,
    ) -> int:
        """A validated integer query parameter.

        Non-numeric values and values below ``minimum`` are rejected as
        structured 400s — never 500s (negative/zero ``limit`` used to
        slip through as server errors).
        """
        raw = self._param(params, name)
        try:
            value = int(raw)
        except ValueError:
            raise UpdateError(f"parameter {name!r} must be an integer: {raw!r}")
        if minimum is not None and value < minimum:
            raise UpdateError(
                f"parameter {name!r} must be >= {minimum}, got {value}"
            )
        return value

    def _route(self, path: str) -> Tuple[Optional[str], bool]:
        """Resolve a URL path to ``(endpoint name, is_v1)``."""
        if path.startswith("/v1/"):
            name = path[len("/v1/"):]
            return (name if name in V1_ROUTES else None), True
        name = path.lstrip("/")
        return (name if name in LEGACY_ROUTES else None), False

    def _dispatch(self, url_path: str, params: Dict[str, list],
                  body: Optional[Dict[str, Any]]) -> None:
        name, v1 = self._route(url_path)
        if name is None:
            self._send_error(
                404, "not_found", f"unknown endpoint {url_path!r}", v1=v1
            )
            return
        handler = getattr(self, f"_handle_{name}")
        if not v1:
            self.service.note_legacy_hit(name)
        try:
            status, payload = handler(params, body, v1)
        except ShardUnavailableError as exc:
            # a dead/unreachable shard degrades the request explicitly
            # (structured 503) — the contract is "never a hang"
            self._send_json(503, {
                "error": {"code": "shard_unavailable", "message": str(exc)},
                "degraded": True,
                "shards_down": exc.shards,
            })
        except (UpdateError, PathSyntaxError, KeyError, TypeError, ValueError) as exc:
            self._send_error(400, "bad_request", str(exc), v1=v1)
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error(500, "internal", f"internal error: {exc}", v1=v1)
        else:
            if not v1:
                payload["deprecated"] = True
            self._send_json(status, payload)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        """Route a GET request (query parameters only, no body)."""
        url = urlparse(self.path)
        self._dispatch(url.path, parse_qs(url.query), None)

    def do_POST(self) -> None:  # noqa: N802
        """Route a POST request with an optional JSON body.

        Malformed requests — an unparsable ``Content-Length``, a body
        that is not valid JSON — are answered with a structured 400
        before any handler runs, so a bad ``/update`` batch can never
        touch the index or advance the epoch.
        """
        url = urlparse(self.path)
        v1 = url.path.startswith("/v1/")
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error(
                400, "bad_request", "invalid Content-Length header", v1=v1
            )
            return
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as exc:
            self._send_error(
                400, "bad_request",
                f"request body is not valid JSON: {exc}", v1=v1,
            )
            return
        self._dispatch(url.path, parse_qs(url.query), body)

    # -- endpoints -------------------------------------------------------
    def _handle_query(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        path = self._param(params, "path")
        limit = None
        if "limit" in params:
            # /v1 requires a useful limit; the deprecated alias keeps
            # the legacy contract where limit=0 returns an empty page
            limit = self._int_param(params, "limit", minimum=1 if v1 else 0)
        offset = 0
        if "offset" in params:
            offset = self._int_param(params, "offset", minimum=0)
        response = self.service.query(path, limit=limit, offset=offset)
        collection = response.collection  # same epoch as the results
        results = []
        for r in response.results:
            element = collection.elements[r.target]
            results.append(
                {
                    "score": r.score,
                    "element": r.target,
                    "doc": element.doc,
                    "tag": element.tag,
                    "text": element.text,
                    "bindings": list(r.bindings),
                }
            )
        payload: Dict[str, Any] = {
            "epoch": response.epoch,
            "path": response.path,
            "cached": response.cached,
            "seconds": response.seconds,
            "count": len(results),
            "results": results,
        }
        if v1:
            consumed = offset + len(results)
            payload.update(
                total=response.total,
                limit=limit,
                offset=offset,
                next_offset=consumed if consumed < response.total else None,
                truncated=response.truncated,
            )
        return 200, payload

    def _handle_count(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        path = self._param(params, "path")
        epoch, n = self.service.count(path)
        return 200, {"epoch": epoch, "path": path, "count": n}

    def _handle_explain(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        path = self._param(params, "path")
        mode = params.get("mode", ["evaluate"])[0]
        epoch, plan = self.service.explain(path, mode=mode)
        return 200, {"epoch": epoch, "plan": plan}

    def _handle_connected(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        u = self._int_param(params, "source")
        v = self._int_param(params, "target")
        epoch, connected = self.service.connected(u, v)
        return 200, {"epoch": epoch, "source": u, "target": v,
                     "connected": connected}

    def _handle_distance(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        u = self._int_param(params, "source")
        v = self._int_param(params, "target")
        epoch, dist = self.service.distance(u, v)
        return 200, {"epoch": epoch, "source": u, "target": v,
                     "distance": dist}

    def _handle_update(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        if body is None:
            raise UpdateError("/update requires a POST body")
        if isinstance(body, list):
            ops = body
        elif isinstance(body, dict):
            ops = body.get("ops", [])
        else:
            raise UpdateError(
                "/update body must be a JSON object with an 'ops' list "
                f"or a bare list, got {type(body).__name__}"
            )
        if not isinstance(ops, list):
            raise UpdateError("'ops' must be a list of operations")
        report = self.service.update(ops)
        return 200, report

    def _handle_stats(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        return 200, self.service.stats()

    def _handle_healthz(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        payload = self.service.healthz()
        return (200 if payload.get("status") == "ok" else 503), payload


class ServiceHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the shared :class:`QueryService`.

    ``daemon_threads`` keeps request threads from blocking shutdown;
    ``allow_reuse_address`` makes restart-in-place (and tests) painless.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: QueryService, *,
                 verbose: bool = False) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.verbose = verbose


def make_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 8080,
    *, verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind a service to a listening socket (port 0 → ephemeral)."""
    return ServiceHTTPServer((host, port), service, verbose=verbose)
