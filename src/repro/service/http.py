"""Stdlib HTTP front end for :class:`~repro.service.service.QueryService`.

``ThreadingHTTPServer`` gives one thread per connection; every handler
thread goes through the service's lock-free read path, so concurrent
clients share the caches and the published epoch exactly like in-process
readers. Endpoints (all JSON):

==========================  =================================================
``GET /query``              ``path`` (required), ``limit`` — ranked matches
``GET /count``              ``path`` — unranked total match count
``GET /connected``          ``source``, ``target`` — reachability test
``GET /distance``           ``source``, ``target`` — shortest link distance
``POST /update``            body ``{"ops": [...]}`` — atomic maintenance
                            batch + hot swap (see ``QueryService.update``)
``GET /stats``              service counters, cache stats, epoch
==========================  =================================================

Every response carries the ``epoch`` that answered it, so clients can
observe hot swaps. To add an endpoint: write a ``_handle_<name>``
method on :class:`ServiceRequestHandler` returning ``(status, payload)``
and it is routed automatically by path segment.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.query.pathexpr import PathSyntaxError
from repro.service.service import QueryService, UpdateError

JSON = "application/json"


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP front end for one :class:`QueryService`.

    Routing is by path segment (``/query`` → ``_handle_query`` etc.);
    ``_dispatch`` owns JSON encoding and error mapping (domain errors →
    400, unknown routes → 404). See ARCHITECTURE.md for how to add an
    endpoint.
    """

    server_version = "repro-hopi"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    @property
    def service(self) -> QueryService:
        """The :class:`QueryService` the enclosing server publishes."""
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        """Per-request logging, silenced unless the server is verbose."""
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", JSON)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _param(self, params: Dict[str, list], name: str) -> str:
        values = params.get(name)
        if not values:
            raise UpdateError(f"missing query parameter {name!r}")
        return values[0]

    def _int_param(self, params: Dict[str, list], name: str) -> int:
        raw = self._param(params, name)
        try:
            return int(raw)
        except ValueError:
            raise UpdateError(f"parameter {name!r} must be an integer: {raw!r}")

    def _dispatch(self, route: str, params: Dict[str, list],
                  body: Optional[Dict[str, Any]]) -> None:
        handler = getattr(self, f"_handle_{route.lstrip('/')}", None)
        if handler is None:
            self._send_json(404, {"error": f"unknown endpoint {route!r}"})
            return
        try:
            status, payload = handler(params, body)
        except (UpdateError, PathSyntaxError, KeyError, TypeError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": f"internal error: {exc}"})
        else:
            self._send_json(status, payload)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        """Route a GET request (query parameters only, no body)."""
        url = urlparse(self.path)
        self._dispatch(url.path, parse_qs(url.query), None)

    def do_POST(self) -> None:  # noqa: N802
        """Route a POST request with an optional JSON body.

        Malformed requests — an unparsable ``Content-Length``, a body
        that is not valid JSON — are answered with a structured 400
        ``{"error": ...}`` before any handler runs, so a bad ``/update``
        batch can never touch the index or advance the epoch.
        """
        url = urlparse(self.path)
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "invalid Content-Length header"})
            return
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as exc:
            self._send_json(
                400, {"error": f"request body is not valid JSON: {exc}"}
            )
            return
        self._dispatch(url.path, parse_qs(url.query), body)

    # -- endpoints -------------------------------------------------------
    def _handle_query(self, params, body) -> Tuple[int, Dict[str, Any]]:
        path = self._param(params, "path")
        limit = None
        if "limit" in params:
            limit = self._int_param(params, "limit")
        response = self.service.query(path, limit=limit)
        collection = response.collection  # same epoch as the results
        results = []
        for r in response.results:
            element = collection.elements[r.target]
            results.append(
                {
                    "score": r.score,
                    "element": r.target,
                    "doc": element.doc,
                    "tag": element.tag,
                    "text": element.text,
                    "bindings": list(r.bindings),
                }
            )
        return 200, {
            "epoch": response.epoch,
            "path": response.path,
            "cached": response.cached,
            "seconds": response.seconds,
            "count": len(results),
            "results": results,
        }

    def _handle_count(self, params, body) -> Tuple[int, Dict[str, Any]]:
        path = self._param(params, "path")
        epoch, n = self.service.count(path)
        return 200, {"epoch": epoch, "path": path, "count": n}

    def _handle_connected(self, params, body) -> Tuple[int, Dict[str, Any]]:
        u = self._int_param(params, "source")
        v = self._int_param(params, "target")
        epoch, connected = self.service.connected(u, v)
        return 200, {"epoch": epoch, "source": u, "target": v,
                     "connected": connected}

    def _handle_distance(self, params, body) -> Tuple[int, Dict[str, Any]]:
        u = self._int_param(params, "source")
        v = self._int_param(params, "target")
        epoch, dist = self.service.distance(u, v)
        return 200, {"epoch": epoch, "source": u, "target": v,
                     "distance": dist}

    def _handle_update(self, params, body) -> Tuple[int, Dict[str, Any]]:
        if body is None:
            raise UpdateError("/update requires a POST body")
        if isinstance(body, list):
            ops = body
        elif isinstance(body, dict):
            ops = body.get("ops", [])
        else:
            raise UpdateError(
                "/update body must be a JSON object with an 'ops' list "
                f"or a bare list, got {type(body).__name__}"
            )
        if not isinstance(ops, list):
            raise UpdateError("'ops' must be a list of operations")
        report = self.service.update(ops)
        return 200, report

    def _handle_stats(self, params, body) -> Tuple[int, Dict[str, Any]]:
        return 200, self.service.stats()


class ServiceHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the shared :class:`QueryService`.

    ``daemon_threads`` keeps request threads from blocking shutdown;
    ``allow_reuse_address`` makes restart-in-place (and tests) painless.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: QueryService, *,
                 verbose: bool = False) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.verbose = verbose


def make_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 8080,
    *, verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind a service to a listening socket (port 0 → ephemeral)."""
    return ServiceHTTPServer((host, port), service, verbose=verbose)
