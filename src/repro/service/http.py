"""Stdlib threaded HTTP front end for :class:`~repro.service.service.QueryService`.

``ThreadingHTTPServer`` gives one thread per connection; every handler
thread goes through the service's lock-free read path, so concurrent
clients share the caches and the published epoch exactly like
in-process readers. The asyncio front end
(:mod:`repro.service.asyncio_http`) serves the same API with admission
control and a bounded worker pool — both dispatch into one shared
:class:`~repro.service.api.ServiceAPI`, so their responses are
bit-identical by construction.

The API is versioned under ``/v1`` (all JSON):

=============================  ============================================
``GET /v1/query``              ``path`` (required), ``limit`` (≥ 1),
                               ``offset`` (≥ 0) — ranked matches with
                               pagination metadata (``total``,
                               ``next_offset``, and ``truncated`` when
                               the ranked list hit the service's
                               ``max_results`` cap, in which case
                               ``total`` is a lower bound — use
                               ``/v1/count`` for the exact number)
``GET /v1/count``              ``path`` — unranked total match count
``GET /v1/explain``            ``path`` (+ optional ``mode`` —
                               ``evaluate``/``stream``/``count``/
                               ``exists``) — the physical plan that would
                               run (estimates, join order/directions)
``GET /v1/connected``          ``source``, ``target`` — reachability test
``GET /v1/distance``           ``source``, ``target`` — shortest link
                               distance
``POST /v1/update``            body ``{"ops": [...]}`` — atomic
                               maintenance batch + hot swap (see
                               ``QueryService.update``)
``GET /v1/stats``              service counters, cache stats, epoch
``GET /v1/healthz``            liveness/readiness: epoch age, and —
                               when serving sharded — per-shard
                               reachability; 200 when ``status`` is
                               ``ok``, 503 when ``degraded``
``GET /v1/metrics``            ops telemetry: per-endpoint latency
                               histograms (p50/p95/p99), request/shed
                               counters, cache hit rates, epoch age,
                               and — on the asyncio front end — queue
                               depth and in-flight gauges
=============================  ============================================

When the server fronts a :class:`~repro.service.shard.ShardRouter`, a
request that cannot be answered because a shard is unreachable gets a
structured **503**::

    {"error": {"code": "shard_unavailable", "message": "..."},
     "degraded": true, "shards_down": [...]}

``/v1`` errors are structured objects::

    {"error": {"code": "bad_request" | "not_found" | "internal",
               "message": "..."}}

The original un-versioned routes (``/query`` … ``/stats``; everything
except ``/explain``) keep working as **deprecated aliases**: they
answer with the legacy flat shapes plus a ``"deprecated": true`` field
(including the legacy ``limit=0`` → empty 200 contract — only ``/v1``
rejects a zero limit), and every hit is counted in the service's
``legacy_hits`` stats so operators can watch migrations drain.

Every response carries the ``epoch`` that answered it, so clients can
observe hot swaps. To add an endpoint: write a ``_handle_<name>``
method on :class:`~repro.service.api.ServiceAPI` returning
``(status, payload)`` and list it in
:data:`~repro.service.api.V1_ROUTES` (and
:data:`~repro.service.api.LEGACY_ROUTES` if it should also answer
un-versioned) — both front ends pick it up.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.service.api import LEGACY_ROUTES, V1_ROUTES, ServiceAPI, error_payload
from repro.service.service import QueryService
from repro.service.telemetry import Telemetry

__all__ = [
    "JSON",
    "LEGACY_ROUTES",
    "V1_ROUTES",
    "ServiceHTTPServer",
    "ServiceRequestHandler",
    "make_server",
]

JSON = "application/json"


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP front end for one :class:`QueryService`.

    A thin transport shell: parses the request line, query string and
    POST body, then hands off to the server's shared
    :class:`~repro.service.api.ServiceAPI` (which owns routing, the
    endpoint handlers and error mapping) and writes the returned
    ``(status, payload)`` back as JSON.
    """

    server_version = "repro-hopi"
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------
    @property
    def service(self) -> QueryService:
        """The :class:`QueryService` the enclosing server publishes."""
        return self.server.service  # type: ignore[attr-defined]

    @property
    def api(self) -> ServiceAPI:
        """The shared endpoint core carried by the enclosing server."""
        return self.server.api  # type: ignore[attr-defined]

    def log_message(self, fmt: str, *args: Any) -> None:
        """Per-request logging, silenced unless the server is verbose."""
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(fmt, *args)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", JSON)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, url_path: str, params: Dict[str, list],
                  body: Optional[Dict[str, Any]]) -> None:
        status, payload = self.api.dispatch(url_path, params, body)
        self._send_json(status, payload)

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        """Route a GET request (query parameters only, no body)."""
        url = urlparse(self.path)
        self._dispatch(url.path, parse_qs(url.query), None)

    def do_POST(self) -> None:  # noqa: N802
        """Route a POST request with an optional JSON body.

        Malformed requests — an unparsable ``Content-Length``, a body
        that is not valid JSON — are answered with a structured 400
        before any handler runs, so a bad ``/update`` batch can never
        touch the index or advance the epoch.
        """
        url = urlparse(self.path)
        v1 = url.path.startswith("/v1/")
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(
                400,
                error_payload("bad_request", "invalid Content-Length header",
                              v1=v1),
            )
            return
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as exc:
            self._send_json(
                400,
                error_payload(
                    "bad_request",
                    f"request body is not valid JSON: {exc}", v1=v1,
                ),
            )
            return
        self._dispatch(url.path, parse_qs(url.query), body)


class ServiceHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the shared :class:`QueryService`.

    ``daemon_threads`` keeps request threads from blocking shutdown;
    ``allow_reuse_address`` makes restart-in-place (and tests) painless.
    The server also owns the shared endpoint core (``api``) and its
    :class:`~repro.service.telemetry.Telemetry` instance, so
    ``/v1/metrics`` works on the threaded front end too.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: QueryService, *,
                 verbose: bool = False,
                 telemetry: Optional[Telemetry] = None) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service
        self.verbose = verbose
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.api = ServiceAPI(service, telemetry=self.telemetry)


def make_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 8080,
    *, verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind a service to a listening socket (port 0 → ephemeral)."""
    return ServiceHTTPServer((host, port), service, verbose=verbose)
