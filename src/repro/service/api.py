"""Transport-neutral ``/v1`` endpoint core shared by every front end.

The threaded (:mod:`repro.service.http`) and asyncio
(:mod:`repro.service.asyncio_http`) front ends answer requests
**bit-identically** because neither implements an endpoint itself:
both hand ``(url path, query params, decoded JSON body)`` to one
:class:`ServiceAPI` and write out whatever ``(status, payload)`` it
returns. Everything observable — response fields, error codes and
messages, pagination arithmetic, the legacy-alias flat shapes, the
``deprecated`` marker — lives here, once. A front end owns only its
transport: socket handling, HTTP parsing, concurrency, and admission
control.

Routing contract (see :mod:`repro.service.http` for the endpoint
table): ``/v1/<name>`` for ``name`` in :data:`V1_ROUTES`, un-versioned
``/<name>`` as deprecated aliases for :data:`LEGACY_ROUTES`. To add an
endpoint, write a ``_handle_<name>`` method returning ``(status,
payload)`` and list it in :data:`V1_ROUTES` — both front ends pick it
up with no further wiring.

``dispatch`` also feeds the shared
:class:`~repro.service.telemetry.Telemetry` instance (per-endpoint
latency histograms + status counters), which the ``/v1/metrics``
endpoint reports back out together with the service's cache hit rates
and epoch age.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Tuple

from repro.query.pathexpr import PathSyntaxError
from repro.service.service import QueryService, UpdateError
from repro.service.shard import ShardUnavailableError
from repro.service.telemetry import Telemetry

#: endpoints served under ``/v1/<name>``
V1_ROUTES = frozenset(
    {"query", "count", "explain", "connected", "distance", "update",
     "stats", "healthz", "metrics"}
)
#: endpoints also served un-versioned, as deprecated aliases
LEGACY_ROUTES = frozenset(
    {"query", "count", "connected", "distance", "update", "stats"}
)
#: control-plane endpoints: cheap, read-only, and required to stay
#: responsive under overload — front ends with admission control must
#: never queue or shed these
CONTROL_ROUTES = frozenset({"healthz", "metrics"})


def error_payload(code: str, message: str, *, v1: bool) -> Dict[str, Any]:
    """The error body: structured ``{"error": {code, message}}`` on
    /v1, the legacy flat ``{"error": message}`` on deprecated aliases."""
    if v1:
        return {"error": {"code": code, "message": message}}
    return {"error": message, "deprecated": True}


def route(path: str) -> Tuple[Optional[str], bool]:
    """Resolve a URL path to ``(endpoint name, is_v1)``."""
    if path.startswith("/v1/"):
        name = path[len("/v1/"):]
        return (name if name in V1_ROUTES else None), True
    name = path.lstrip("/")
    return (name if name in LEGACY_ROUTES else None), False


class ServiceAPI:
    """Every ``/v1`` endpoint of one service, as plain method calls.

    ``service`` is anything with the :class:`QueryService` surface
    (including :class:`~repro.service.shard.ShardRouter`, which
    duck-types it); ``telemetry`` is shared with the enclosing front
    end so admission-control gauges and request histograms land in one
    ``/v1/metrics`` payload.
    """

    def __init__(
        self, service: QueryService, *, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.service = service
        self.telemetry = telemetry if telemetry is not None else Telemetry()

    # -- parameter plumbing ---------------------------------------------
    def _param(self, params: Dict[str, list], name: str) -> str:
        values = params.get(name)
        if not values:
            raise UpdateError(f"missing query parameter {name!r}")
        return values[0]

    def _int_param(
        self,
        params: Dict[str, list],
        name: str,
        *,
        minimum: Optional[int] = None,
    ) -> int:
        """A validated integer query parameter.

        Non-numeric values and values below ``minimum`` are rejected as
        structured 400s — never 500s (negative/zero ``limit`` used to
        slip through as server errors).
        """
        raw = self._param(params, name)
        try:
            value = int(raw)
        except ValueError:
            raise UpdateError(f"parameter {name!r} must be an integer: {raw!r}")
        if minimum is not None and value < minimum:
            raise UpdateError(
                f"parameter {name!r} must be >= {minimum}, got {value}"
            )
        return value

    # -- dispatch --------------------------------------------------------
    def dispatch(
        self,
        url_path: str,
        params: Dict[str, list],
        body: Optional[Any],
    ) -> Tuple[int, Dict[str, Any]]:
        """Route one request and run its handler, mapping errors.

        Returns ``(status, payload)`` — the complete response in both
        the success and every error case, so front ends only serialise.
        Domain errors map to 400, a dead shard to a structured 503,
        anything unexpected to 500; deprecated aliases get the
        ``deprecated`` marker exactly as before the refactor.
        """
        name, v1 = route(url_path)
        if name is None:
            return 404, error_payload(
                "not_found", f"unknown endpoint {url_path!r}", v1=v1
            )
        if not v1:
            self.service.note_legacy_hit(name)
        t0 = time.perf_counter()
        try:
            handler = getattr(self, f"_handle_{name}")
            status, payload = handler(params, body, v1)
            if not v1:
                payload["deprecated"] = True
        except ShardUnavailableError as exc:
            # a dead/unreachable shard degrades the request explicitly
            # (structured 503) — the contract is "never a hang"
            status, payload = 503, {
                "error": {"code": "shard_unavailable", "message": str(exc)},
                "degraded": True,
                "shards_down": exc.shards,
            }
        except (UpdateError, PathSyntaxError, KeyError, TypeError, ValueError) as exc:
            status, payload = 400, error_payload("bad_request", str(exc), v1=v1)
        except Exception as exc:  # pragma: no cover - defensive
            status, payload = 500, error_payload(
                "internal", f"internal error: {exc}", v1=v1
            )
        self.telemetry.observe(name, time.perf_counter() - t0, status)
        return status, payload

    # -- endpoints -------------------------------------------------------
    def _handle_query(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        path = self._param(params, "path")
        limit = None
        if "limit" in params:
            # /v1 requires a useful limit; the deprecated alias keeps
            # the legacy contract where limit=0 returns an empty page
            limit = self._int_param(params, "limit", minimum=1 if v1 else 0)
        offset = 0
        if "offset" in params:
            offset = self._int_param(params, "offset", minimum=0)
        response = self.service.query(path, limit=limit, offset=offset)
        collection = response.collection  # same epoch as the results
        results = []
        for r in response.results:
            element = collection.elements[r.target]
            results.append(
                {
                    "score": r.score,
                    "element": r.target,
                    "doc": element.doc,
                    "tag": element.tag,
                    "text": element.text,
                    "bindings": list(r.bindings),
                }
            )
        payload: Dict[str, Any] = {
            "epoch": response.epoch,
            "path": response.path,
            "cached": response.cached,
            "seconds": response.seconds,
            "count": len(results),
            "results": results,
        }
        if v1:
            consumed = offset + len(results)
            payload.update(
                total=response.total,
                limit=limit,
                offset=offset,
                next_offset=consumed if consumed < response.total else None,
                truncated=response.truncated,
            )
        return 200, payload

    def _handle_count(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        path = self._param(params, "path")
        epoch, n = self.service.count(path)
        return 200, {"epoch": epoch, "path": path, "count": n}

    def _handle_explain(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        path = self._param(params, "path")
        mode = params.get("mode", ["evaluate"])[0]
        epoch, plan = self.service.explain(path, mode=mode)
        return 200, {"epoch": epoch, "plan": plan}

    def _handle_connected(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        u = self._int_param(params, "source")
        v = self._int_param(params, "target")
        epoch, connected = self.service.connected(u, v)
        return 200, {"epoch": epoch, "source": u, "target": v,
                     "connected": connected}

    def _handle_distance(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        u = self._int_param(params, "source")
        v = self._int_param(params, "target")
        epoch, dist = self.service.distance(u, v)
        return 200, {"epoch": epoch, "source": u, "target": v,
                     "distance": dist}

    def _handle_update(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        if body is None:
            raise UpdateError("/update requires a POST body")
        if isinstance(body, list):
            ops = body
        elif isinstance(body, dict):
            ops = body.get("ops", [])
        else:
            raise UpdateError(
                "/update body must be a JSON object with an 'ops' list "
                f"or a bare list, got {type(body).__name__}"
            )
        if not isinstance(ops, list):
            raise UpdateError("'ops' must be a list of operations")
        report = self.service.update(ops)
        return 200, report

    def _handle_stats(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        return 200, self.service.stats()

    def _handle_healthz(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        payload = self.service.healthz()
        return (200 if payload.get("status") == "ok" else 503), payload

    def _handle_metrics(self, params, body, v1) -> Tuple[int, Dict[str, Any]]:
        """Telemetry + cache hit rates + epoch age, in one payload.

        Deliberately avoids :meth:`QueryService.healthz` /
        :meth:`~repro.service.shard.ShardRouter.healthz` — on a sharded
        router those scatter to every shard, and ``/v1/metrics`` must
        stay cheap and responsive even when shards are down.
        """
        payload = self.telemetry.snapshot()
        service = self.service
        payload["epoch"] = service.epoch
        published_at = getattr(service, "_published_at", None)
        payload["epoch_age_seconds"] = (
            time.time() - published_at if published_at is not None else None
        )
        started = getattr(service, "_started", None)
        payload["uptime_seconds"] = (
            time.time() - started if started is not None else None
        )
        holder = getattr(service, "_holder", None)
        payload["swaps"] = (
            holder.swaps if holder is not None else getattr(service, "_swaps", None)
        )
        caches: Dict[str, Any] = {}
        results = getattr(service, "_results", None)
        if results is not None:
            caches["result"] = results.stats()
        plans = getattr(service, "_plans", None)
        if plans is not None:
            caches["plan"] = plans.stats()
        if holder is not None:
            caches["probe"] = holder.current.probes.stats()
        payload["cache"] = caches
        ingest_stats = getattr(service, "ingest_stats", None)
        if ingest_stats is not None:
            # the ingestion-freshness gauge (docs ingested, publish-lag
            # percentiles) — present on QueryService, absent on routers
            payload["ingest"] = ingest_stats()
        return 200, payload
