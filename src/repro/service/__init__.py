"""The query-serving tier: concurrent reads, caching, zero-downtime swap.

HOPI exists to answer connection queries fast enough to sit inside an
interactive XML search engine, and the paper pairs the index with
incremental maintenance so it stays online while the collection
changes. This package is the missing serving layer on top of the core
index:

* :class:`repro.service.service.QueryService` — one published
  :class:`~repro.core.hopi.HopiIndex` serving many reader threads, with
  a parsed-plan cache, an LRU result cache keyed by ``(path, epoch)``,
  and in-flight coalescing of identical descendant probes;
* :mod:`repro.service.epoch` — the RCU-style epoch protocol: writers
  mutate a deep-copied *shadow* index while readers keep answering on
  the published epoch; an atomic reference swap publishes the shadow
  with zero reader downtime and no torn answers;
* :mod:`repro.service.api` — the transport-neutral ``/v1`` endpoint
  core (routing, handlers, error mapping) shared by every front end,
  so their responses are bit-identical by construction;
* :mod:`repro.service.http` — a stdlib ``ThreadingHTTPServer`` front
  end (``/query``, ``/count``, ``/connected``, ``/distance``,
  ``/update``, ``/stats``, ``/healthz``, ``/metrics``), wired into the
  CLI as ``repro serve``;
* :mod:`repro.service.asyncio_http` — the asyncio front end with
  admission control (bounded worker pool + pending queue, structured
  429/503 shedding, per-endpoint deadlines) — ``repro serve --async``;
* :mod:`repro.service.telemetry` — counters, per-endpoint latency
  histograms and live gauges behind ``/v1/metrics``;
* :mod:`repro.service.shard` — horizontally sharded serving: a
  :class:`~repro.service.shard.ShardRouter` scatter-gathers every
  ``/v1`` request over per-shard :class:`QueryService`\\ s (in-process
  or on ``repro build-worker`` daemons via the rpc ``S`` frames) with
  bit-identical answers, MVCC-generation rolling hot-swap and an
  explicit degraded mode — ``repro serve --shards N``.

``repro.bench.service_load`` drives this tier under closed- and
open-loop load and records the ``BENCH_service.json`` trajectory.
"""

from repro.service.api import ServiceAPI, error_payload
from repro.service.asyncio_http import (
    AsyncServerHandle,
    AsyncServiceServer,
    start_in_thread,
)
from repro.service.cache import LRUCache
from repro.service.coalesce import CoalescingCache
from repro.service.epoch import EpochHolder, EpochState
from repro.service.http import ServiceHTTPServer, make_server
from repro.service.telemetry import Telemetry
from repro.service.service import QueryResponse, QueryService, UpdateError
from repro.service.shard import (
    ShardRegistry,
    ShardRouter,
    ShardService,
    ShardUnavailableError,
    derive_shard_views,
    shard_of,
)

__all__ = [
    "AsyncServerHandle",
    "AsyncServiceServer",
    "LRUCache",
    "CoalescingCache",
    "EpochHolder",
    "EpochState",
    "ServiceAPI",
    "ServiceHTTPServer",
    "Telemetry",
    "error_payload",
    "make_server",
    "start_in_thread",
    "QueryService",
    "QueryResponse",
    "UpdateError",
    "ShardRegistry",
    "ShardRouter",
    "ShardService",
    "ShardUnavailableError",
    "derive_shard_views",
    "shard_of",
]
