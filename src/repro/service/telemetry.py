"""Ops-grade telemetry for the serving tier (the ``/v1/metrics`` feed).

One :class:`Telemetry` instance rides along with each HTTP front end
and aggregates everything an operator watches during an incident:

* **counters** — monotone event counts (requests by endpoint and
  status class, shed requests, timeouts);
* **per-endpoint latency histograms** — a sliding window of recent
  request latencies per endpoint, summarised as p50/p95/p99 (nearest
  rank over the window, the same arithmetic the bench harness uses);
* **gauges** — point-in-time readings evaluated at snapshot time
  (queue depth, in-flight requests). Gauges are registered as
  zero-argument callables so the snapshot always reports the *current*
  value, not the value at registration.

Everything is guarded by one lock and every operation is O(1) (the
histograms are bounded deques; percentiles sort only at snapshot
time), so instrumentation stays cheap enough for the request hot
path. The module is transport-neutral: the threaded and asyncio front
ends feed the same class, and :meth:`Telemetry.snapshot` is the
payload of ``/v1/metrics`` (minus the service-level cache/epoch
fields, which :class:`repro.service.api.ServiceAPI` merges in).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Union

#: latencies kept per endpoint (a sliding window, not all-time)
DEFAULT_WINDOW = 2048


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 < f <= 1)."""
    if not sorted_values:
        return 0.0
    rank = max(
        0,
        min(len(sorted_values) - 1, int(fraction * len(sorted_values) + 0.5) - 1),
    )
    return sorted_values[rank]


class EndpointStats:
    """The latency window and status counters of one endpoint."""

    __slots__ = ("latencies", "count", "errors", "shed")

    def __init__(self, window: int) -> None:
        self.latencies: Deque[float] = deque(maxlen=window)
        self.count = 0
        self.errors = 0
        self.shed = 0

    def observe(self, seconds: float, status: int) -> None:
        """Record one completed request."""
        self.count += 1
        self.latencies.append(seconds)
        if status >= 500:
            self.errors += 1
        elif status == 429:
            self.shed += 1

    def summary(self) -> Dict[str, Any]:
        """Count, error/shed totals and window percentiles (ms)."""
        window = sorted(self.latencies)
        return {
            "count": self.count,
            "errors": self.errors,
            "shed": self.shed,
            "window": len(window),
            "p50_ms": percentile(window, 0.50) * 1e3,
            "p95_ms": percentile(window, 0.95) * 1e3,
            "p99_ms": percentile(window, 0.99) * 1e3,
        }


class Telemetry:
    """Thread-safe counters + per-endpoint histograms + live gauges.

    Args:
        window: latencies retained per endpoint for the percentile
            summaries (sliding window; older samples age out).
    """

    def __init__(self, *, window: int = DEFAULT_WINDOW) -> None:
        self._window = window
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._endpoints: Dict[str, EndpointStats] = {}
        self._gauges: Dict[str, Union[int, float, Callable[[], Any]]] = {}

    # -- recording -------------------------------------------------------
    def counter(self, name: str, n: int = 1) -> None:
        """Increment the monotone counter ``name`` by ``n``."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, endpoint: str, seconds: float, status: int) -> None:
        """Record one completed request against ``endpoint``.

        Feeds both the endpoint's latency window and the coarse
        ``requests`` / ``responses_NNx`` counters.
        """
        with self._lock:
            stats = self._endpoints.get(endpoint)
            if stats is None:
                stats = self._endpoints[endpoint] = EndpointStats(self._window)
            stats.observe(seconds, status)
            self._counters["requests"] = self._counters.get("requests", 0) + 1
            bucket = f"responses_{status // 100}xx"
            self._counters[bucket] = self._counters.get(bucket, 0) + 1

    def set_gauge(
        self, name: str, value: Union[int, float, Callable[[], Any]]
    ) -> None:
        """Register a gauge: a value, or a callable read at snapshot."""
        with self._lock:
            self._gauges[name] = value

    # -- reading ---------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """A consistent copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def shed_total(self) -> int:
        """Requests refused by admission control (queue-full,
        per-client cap, or timeout)."""
        with self._lock:
            return (
                self._counters.get("shed_queue_full", 0)
                + self._counters.get("shed_client_cap", 0)
                + self._counters.get("shed_timeout", 0)
            )

    def snapshot(self) -> Dict[str, Any]:
        """The ``/v1/metrics`` core payload.

        ``endpoints`` maps endpoint name → count/errors/shed +
        p50/p95/p99 over the latency window; ``gauges`` evaluates every
        registered callable *now* (a gauge that raises reports the
        error string instead of poisoning the endpoint).
        """
        with self._lock:
            counters = dict(self._counters)
            endpoints = {
                name: stats.summary() for name, stats in self._endpoints.items()
            }
            gauges = dict(self._gauges)
        evaluated: Dict[str, Any] = {}
        for name, value in gauges.items():
            if callable(value):
                try:
                    evaluated[name] = value()
                except Exception as exc:  # pragma: no cover - defensive
                    evaluated[name] = f"error: {exc}"
            else:
                evaluated[name] = value
        return {
            "counters": counters,
            "endpoints": endpoints,
            "gauges": evaluated,
            "shed": {
                "queue_full": counters.get("shed_queue_full", 0),
                "client_cap": counters.get("shed_client_cap", 0),
                "timeout": counters.get("shed_timeout", 0),
                "total": counters.get("shed_queue_full", 0)
                + counters.get("shed_client_cap", 0)
                + counters.get("shed_timeout", 0),
            },
        }
