"""In-flight coalescing: concurrent identical computations run once.

When many clients issue the same descendant probe (or the same cold
query) at the same moment, computing it once and handing the answer to
every waiter beats computing it N times — under the GIL the duplicate
computations would not even overlap, they would serialise. The pattern
is the classic "singleflight": the first caller computes, later callers
with the same key block on an event and receive the same result (or the
same exception).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.service.cache import LRUCache

_MISSING = object()


class _Pending:
    """One in-flight computation: an event plus its outcome."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = _MISSING
        self.error: Optional[BaseException] = None


class CoalescingCache:
    """An :class:`LRUCache` with single-flight computation.

    :meth:`get_or_compute` returns ``(value, source)`` where ``source``
    is ``"hit"`` (already cached), ``"computed"`` (this thread ran the
    computation) or ``"coalesced"`` (another thread was already running
    it; we waited and shared its answer). ``coalesced`` is also a
    monotone counter — the service's ``/stats`` reports it as the number
    of requests served without any work of their own.
    """

    def __init__(self, capacity: int) -> None:
        self.cache = LRUCache(capacity)
        self._inflight: Dict[Hashable, _Pending] = {}
        self._lock = threading.Lock()
        self.coalesced = 0

    def get_or_compute(
        self, key: Hashable, compute: Callable[[], Any]
    ) -> Tuple[Any, str]:
        """The cached value for ``key``, computing it at most once.

        Concurrent callers with the same cold key elect one leader to
        run ``compute()``; the rest block and share its result (or its
        exception). Returns ``(value, source)`` with ``source`` one of
        ``"hit"``, ``"computed"`` or ``"coalesced"``.
        """
        value = self.cache.get(key, _MISSING)
        if value is not _MISSING:
            return value, "hit"

        with self._lock:
            # re-check under the lock: the computing thread caches the
            # value *before* releasing waiters, so a hit here is final
            value = self.cache.peek(key, _MISSING)
            if value is not _MISSING:
                return value, "hit"
            pending = self._inflight.get(key)
            if pending is None:
                pending = _Pending()
                self._inflight[key] = pending
                leader = True
            else:
                leader = False
                self.coalesced += 1

        if not leader:
            pending.event.wait()
            if pending.error is not None:
                raise pending.error
            return pending.value, "coalesced"

        try:
            value = compute()
        except BaseException as exc:
            pending.error = exc
            raise
        else:
            pending.value = value
            self.cache.put(key, value)
            return value, "computed"
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            pending.event.set()

    def stats(self) -> Dict[str, object]:
        """LRU stats plus coalesced / in-flight counters."""
        data = self.cache.stats()
        data["coalesced"] = self.coalesced
        with self._lock:
            data["inflight"] = len(self._inflight)
        return data
