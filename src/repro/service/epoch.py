"""The epoch-based hot-swap protocol (RCU for the HOPI index).

A *published* index never mutates. Readers take one reference to the
current :class:`EpochState` at the start of a request and answer the
whole request from it; writers deep-copy the published index into a
*shadow* (:meth:`repro.core.hopi.HopiIndex.copy`), apply maintenance to
the shadow (readers keep going on the old epoch — zero downtime), then
publish the shadow with a single atomic reference assignment. A reader
therefore always observes answers consistent with exactly one epoch:
either entirely pre-swap or entirely post-swap, never a torn mix.

The atomicity of the swap is a plain attribute write — atomic under the
GIL, and the only synchronisation readers ever need. Writers serialise
among themselves with the service's write lock; readers take no lock at
all.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.core.hopi import HopiIndex
from repro.query.engine import QueryEngine
from repro.service.coalesce import CoalescingCache


@dataclass(frozen=True)
class EpochState:
    """One published generation of the serving tier.

    Everything a request needs travels together, so a single reference
    grab pins a consistent view:

    Attributes:
        epoch: the index's change counter at publish time.
        index: the (immutable-by-contract) index of this generation.
        engine: the shared, re-entrant query engine bound to this
            generation's collection; all reader threads use it.
        probes: the per-epoch descendant-probe cache with in-flight
            coalescing. Keyed by ``(source, step_key)``; never shared
            across epochs, so stale answers cannot leak through a swap.
    """

    epoch: int
    index: HopiIndex
    engine: QueryEngine
    probes: CoalescingCache


class EpochHolder:
    """The atomic publication point of the current :class:`EpochState`."""

    def __init__(self, state: EpochState) -> None:
        self._state = state
        self.swaps = 0

    @property
    def current(self) -> EpochState:
        """The published state. One attribute read — atomic, lock-free;
        callers must grab it once per request and use only that."""
        return self._state

    def publish(self, state: EpochState) -> EpochState:
        """Atomically publish a new generation (must advance the epoch).

        Returns the state that was replaced. In-flight readers keep
        their reference to it and finish on the old epoch; new requests
        see the new one — that is the entire swap protocol.
        """
        if state.epoch <= self._state.epoch:
            raise ValueError(
                f"epoch must advance: {state.epoch} <= {self._state.epoch}"
            )
        old = self._state
        self._state = state
        self.swaps += 1
        return old
