"""A small thread-safe LRU cache with hit/miss accounting.

Used twice by the service: for parsed query plans (path string →
:class:`~repro.query.pathexpr.PathExpression`) and, composed with the
in-flight coalescer, for ranked results keyed by ``(path, epoch)``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

_MISSING = object()


class _InFlight:
    """One in-flight ``get_or_create`` factory: event plus outcome."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = _MISSING
        self.error: Optional[BaseException] = None


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    All operations take an internal lock, so the cache is safe to share
    between reader threads; ``hits``/``misses``/``evictions`` are
    monotone counters for the ``/stats`` endpoint.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        # in-flight get_or_create factories, keyed like the cache
        self._flight_lock = threading.Lock()
        self._inflight: Dict[Hashable, "_InFlight"] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value (refreshing its recency), or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without touching recency or counters."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting LRU entries over capacity."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Cached value, or ``factory()`` computed once and returned.

        The factory runs outside the main lock (it may be slow), but
        concurrent callers that miss on the same key elect a single
        leader: only the leader runs ``factory()``, the rest block on
        its completion and share the value (or its exception) — the
        same single-flight semantics as
        :meth:`repro.service.coalesce.CoalescingCache.get_or_compute`,
        without the source/counter bookkeeping. Two threads can
        therefore never race their ``put``\\ s for one key.
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value

        with self._flight_lock:
            # re-check: the leader caches before releasing its waiters,
            # so a hit here is final
            value = self.peek(key, _MISSING)
            if value is not _MISSING:
                return value
            pending = self._inflight.get(key)
            if pending is None:
                pending = _InFlight()
                self._inflight[key] = pending
                leader = True
            else:
                leader = False

        if not leader:
            pending.event.wait()
            if pending.error is not None:
                raise pending.error
            return pending.value

        try:
            value = factory()
        except BaseException as exc:
            pending.error = exc
            raise
        else:
            pending.value = value
            self.put(key, value)
            return value
        finally:
            with self._flight_lock:
                self._inflight.pop(key, None)
            pending.event.set()

    def clear(self) -> None:
        """Drop every entry (hit/miss/eviction counters are kept)."""
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    @property
    def hit_rate(self) -> Optional[float]:
        """Hits / lookups, or None before the first lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else None

    def stats(self) -> Dict[str, object]:
        """Occupancy and hit/miss/eviction counters for ``/stats``."""
        return {
            "size": len(self),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }
