"""Horizontally sharded serving: a scatter-gather router over shards.

The ICDE'05 paper's divide-and-conquer build makes 2-hop covers
practical on large collections; this module carries the same idea into
the *serving* tier. A :class:`ShardRouter` partitions the collection's
documents by a stable hash, runs one :class:`ShardService` (a
:class:`~repro.service.service.QueryService` subclass) per shard —
in-process, or inside ``repro build-worker`` daemons speaking the
extended :mod:`repro.core.rpc` protocol — and fans every ``/v1``
request out to the shards, merging the ranked answer streams with a
k-way heap so results, scores, ``total`` and pagination are
**bit-identical** to single-process serving.

Why the answers merge exactly
-----------------------------

* **Ownership partitions the result space.** A result tuple is *owned*
  by the shard that owns the document of its **first** binding
  (:func:`shard_of` over doc ids). Ownership is a function of the
  tuple alone, so the per-shard result sets are disjoint and their
  union is the global result set.
* **A shard's view is forward-closed.** Shard ``s`` serves the
  subcollection induced by the forward *document-closure* of its owned
  documents (every document reachable from them through inter-document
  links). All later bindings of an owned tuple, and every witness of a
  descendant ``[//tag]`` predicate on it, lie inside that closure — so
  a shard computes its owned tuples **exactly**, with no cross-shard
  probes at query time. Cross-shard links are handled by this closure
  materialisation rather than by a separate global-links shard: the
  join-phase cover entries that cross partitions are simply present in
  every view whose closure spans them.
* **Work scales with ownership, not view size.** Closures overlap, so
  views are large; evaluating a whole view and post-filtering would
  duplicate most of the global work on every shard. Instead the shard
  binds its plan with ``order="naive"`` (seed at step position 0) and
  installs an :class:`~repro.query.exec.ExecContext` ``first_filter``
  that admits only owned first bindings — the pipeline never explores
  tuples another shard owns.
* **Scores are order- and vocabulary-independent.** Scores are
  recomputed per shard in the engine's canonical left-to-right
  association from pairwise tag similarities and restricted-cover
  distances (exact for view pairs), so each tuple scores identically
  everywhere. The router merges the per-shard ``(-score, bindings)``
  streams with ``heapq.merge`` — the same total order the engine sorts
  by — and re-derives ``total``/``truncated`` from the shards' full
  owned counts.

Rolling hot-swap without torn reads
-----------------------------------

Updates are MVCC *generations*. The router keeps the authoritative
full index; an update batch is applied to a deep-copied shadow
(:func:`~repro.service.service.apply_update_op` — the same op
vocabulary as single-process ``/update``), fresh views are derived,
and generation ``g+1`` is installed shard by shard (**rolling**: one
shard loading a new view never blocks the others). Shards keep the
last two generations; the router flips its serving pointer only after
every shard holds ``g+1``, and every scattered request carries the
generation it must answer from — a request is therefore answered
entirely from one generation by construction: zero torn reads, readers
never block.

Failover: a shard that drops its connection (or times out) raises
:class:`ShardUnavailableError`, which the HTTP layer maps to a
structured **503** with a ``degraded`` flag — never a hang.
"""

from __future__ import annotations

import heapq
import itertools
import pickle
import threading
import time
import zlib
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.hopi import HopiIndex, backend_of, convert_cover
from repro.core.cover import DistanceTwoHopCover, TwoHopCover
from repro.core.rpc import (
    OP_SHARD,
    RpcWorkerError,
    _WorkerConnection,
)
from repro.query.engine import QueryEngine, QueryResult
from repro.query.exec import ExecContext, run_bindings
from repro.query.pathexpr import PathExpression
from repro.query.planner import PreparedQuery, plan_query
from repro.service.cache import LRUCache
from repro.service.coalesce import CoalescingCache
from repro.service.service import (
    QueryResponse,
    QueryService,
    UpdateError,
    apply_update_op,
)
from repro.storage.snapshot import snapshot_from_bytes, snapshot_to_bytes
from repro.xmlmodel.model import Collection, DocId, ElementId


class ShardUnavailableError(RuntimeError):
    """One or more shards could not answer (dead worker, timeout).

    Maps to a structured HTTP 503 with ``degraded: true`` — the
    router's contract is an explicit error, never a hang.
    """

    def __init__(self, shards: Sequence[int], message: str) -> None:
        super().__init__(message)
        self.shards = sorted(shards)


def shard_of(doc_id: DocId, num_shards: int) -> int:
    """Stable document → shard assignment (CRC-32 of the doc id).

    Deterministic across processes and Python versions (unlike
    ``hash``), so the router and every worker agree on ownership
    without shipping an assignment table.
    """
    return zlib.crc32(str(doc_id).encode("utf-8")) % num_shards


def assign_documents(
    collection: Collection, num_shards: int
) -> List[List[DocId]]:
    """Owned documents per shard, in sorted order (deterministic)."""
    owned: List[List[DocId]] = [[] for _ in range(num_shards)]
    for doc_id in sorted(collection.documents):
        owned[shard_of(doc_id, num_shards)].append(doc_id)
    return owned


def restrict_cover(cover, elements):
    """Restrict ``cover`` to rows of ``elements``, keeping its backend.

    The restricted cover keeps every label entry whose *node* is a view
    element; label **centers** outside the view stay as inactive
    interned ids (both the set backends' ``nodes`` gate and the CSR
    snapshot's explicit ``active`` array preserve that distinction), so
    ``connected``/``distance``/``ancestors`` answer exactly for every
    pair of view elements — 2-hop witnesses need no row of their own.
    """
    elements = set(elements)
    if cover.is_distance_aware:
        fresh: Any = DistanceTwoHopCover(elements)
        for kind, node, center, dist in cover.entries():
            if node in elements:
                (fresh.add_lin if kind == "in" else fresh.add_lout)(
                    node, center, dist
                )
    else:
        fresh = TwoHopCover(elements)
        for kind, node, center in cover.entries():
            if node in elements:
                (fresh.add_lin if kind == "in" else fresh.add_lout)(
                    node, center
                )
    return convert_cover(fresh, backend_of(cover))


@dataclass(frozen=True)
class ShardView:
    """One shard's slice of a generation: its view index + ownership."""

    shard: int
    owned_docs: FrozenSet[DocId]
    index: HopiIndex


def derive_shard_views(index: HopiIndex, num_shards: int) -> List[ShardView]:
    """Derive every shard's view of ``index`` (one generation).

    A shard's view is the subcollection induced by the forward
    document-closure of its owned documents plus the cover restricted
    to the view's elements. The view index inherits the full index's
    epoch — that number is the generation tag requests pin.
    """
    collection = index.collection
    graph = collection.document_graph()
    views: List[ShardView] = []
    for shard, owned in enumerate(assign_documents(collection, num_shards)):
        closure = set(owned)
        frontier = list(owned)
        while frontier:
            doc = frontier.pop()
            for successor in graph.successors(doc):
                if successor not in closure:
                    closure.add(successor)
                    frontier.append(successor)
        sub = collection.subcollection(closure)
        cover = restrict_cover(index.cover, set(sub.elements))
        view = HopiIndex(sub, cover)
        view.epoch = index.epoch
        views.append(
            ShardView(shard=shard, owned_docs=frozenset(owned), index=view)
        )
    return views


# ---------------------------------------------------------------------------
# per-shard service
# ---------------------------------------------------------------------------


class ShardService(QueryService):
    """One shard's :class:`QueryService` over its view index.

    Inherits the whole per-epoch machinery (plan/result/probe caches,
    RCU state) and adds the shard-local entry points the router
    scatters to. Shard services are immutable per generation — the
    router installs a fresh one instead of hot-swapping in place.
    """

    def __init__(
        self,
        index: HopiIndex,
        *,
        owned_docs: Sequence[DocId],
        shard_id: int = 0,
        **kwargs: Any,
    ) -> None:
        super().__init__(index, **kwargs)
        self.shard_id = shard_id
        self.owned_docs: FrozenSet[DocId] = frozenset(owned_docs)

    # -- owned evaluation ----------------------------------------------
    def _owned_ranked(self, state, prepared: PreparedQuery) -> List[QueryResult]:
        """All result tuples this shard owns, ranked, untruncated.

        The plan is bound ``order="naive"`` — seeded at step position 0
        — so the ``first_filter`` prunes the pipeline at its *source*
        and per-shard work scales with the owned share of the
        collection, not with the (heavily overlapping) view size.
        """
        engine = state.engine
        plan = plan_query(prepared.logical, engine, order="naive")
        elements = state.index.collection.elements
        owned = self.owned_docs
        ctx = ExecContext(
            engine,
            state.index,
            self._probe_for(state),
            first_filter=lambda e: elements[e].doc in owned,
        )
        expr = prepared.logical.expr
        results = [
            QueryResult(binding, engine._score_binding(state.index, expr, binding))
            for binding in run_bindings(plan, ctx)
        ]
        results.sort(key=lambda r: (-r.score, r.bindings))
        return results

    def shard_query(
        self, path: Union[str, PathExpression], *, prefix: Optional[int] = None
    ) -> Dict[str, Any]:
        """The scatter target: this shard's owned slice of one query.

        Returns ``matches`` (the full owned count — the router sums
        these into the global ``total``) and the first ``prefix`` owned
        ``(score, bindings)`` pairs in merge order. The full owned list
        is cached per ``(plan key, epoch)`` so windows share one entry.
        """
        state = self._holder.current
        prepared = self._prepare(path)
        key = ("shardq", prepared.key, state.epoch)
        results, source = self._results.get_or_compute(
            key, lambda: self._owned_ranked(state, prepared)
        )
        if prefix is not None:
            shipped = results[:prefix]
        else:
            shipped = results
        self._count("query")
        return {
            "epoch": state.epoch,
            "matches": len(results),
            "items": [(r.score, r.bindings) for r in shipped],
            "source": source,
        }

    def shard_count(self, path: Union[str, PathExpression]) -> Dict[str, Any]:
        """Owned match count (sums across shards to the global count)."""
        state = self._holder.current
        prepared = self._prepare(path)
        key = ("shardc", prepared.key, state.epoch)

        def compute() -> int:
            engine = state.engine
            plan = plan_query(prepared.logical, engine, order="naive")
            elements = state.index.collection.elements
            owned = self.owned_docs
            ctx = ExecContext(
                engine,
                state.index,
                self._probe_for(state),
                first_filter=lambda e: elements[e].doc in owned,
            )
            return sum(1 for _ in run_bindings(plan, ctx))

        n, _ = self._results.get_or_compute(key, compute)
        self._count("count")
        return {"epoch": state.epoch, "count": n}

    def shard_connected(self, u: ElementId, v: ElementId) -> Dict[str, Any]:
        """Answer ``u ->* v`` iff this shard owns ``u``'s document.

        The owning shard is authoritative: element-level paths project
        to document-level paths, so every element reachable from ``u``
        lies in the owner's forward-closed view — ``v`` outside the
        view means unreachable, exactly as the full index would say.
        """
        state = self._holder.current
        elements = state.index.collection.elements
        info = elements.get(u)
        if info is None or info.doc not in self.owned_docs:
            return {"epoch": state.epoch, "owned": False}
        if v not in elements:
            return {"epoch": state.epoch, "owned": True, "connected": False}
        return {
            "epoch": state.epoch,
            "owned": True,
            "connected": state.index.connected(u, v),
        }

    def shard_distance(self, u: ElementId, v: ElementId) -> Dict[str, Any]:
        """Like :meth:`shard_connected` for link distance."""
        state = self._holder.current
        elements = state.index.collection.elements
        info = elements.get(u)
        if info is None or info.doc not in self.owned_docs:
            return {"epoch": state.epoch, "owned": False}
        if v not in elements:
            return {"epoch": state.epoch, "owned": True, "distance": None}
        return {
            "epoch": state.epoch,
            "owned": True,
            "distance": state.index.distance(u, v),
        }

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        payload = super().stats()
        payload["shard"] = self.shard_id
        payload["owned_documents"] = len(self.owned_docs)
        return payload

    def healthz(self) -> Dict[str, Any]:
        payload = super().healthz()
        payload["shard"] = self.shard_id
        payload["owned_documents"] = len(self.owned_docs)
        return payload


class ShardRegistry:
    """The generation-windowed shard services of one worker process.

    One registry may host several shards (the router maps shard ``i``
    to worker ``i % len(workers)``), each keeping its last
    :data:`KEEP_GENERATIONS` generations so in-flight requests pinned
    to the previous generation keep answering during a rolling swap.
    """

    #: generations retained per shard (current + previous)
    KEEP_GENERATIONS = 2

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._shards: Dict[int, "OrderedDict[int, ShardService]"] = {}

    def _install(self, request: Dict[str, Any]) -> Dict[str, Any]:
        shard = int(request["shard"])
        generation = int(request["generation"])
        if "index" in request:  # in-process install: share the objects
            index = request["index"]
        else:  # wire install: CSR snapshot blob + pickled subcollection
            cover = convert_cover(
                snapshot_from_bytes(request["cover"]),
                request.get("backend", "arrays"),
            )
            index = HopiIndex(request["collection"], cover)
            index.epoch = generation
        service = ShardService(
            index,
            owned_docs=request["owned_docs"],
            shard_id=shard,
            **request.get("service", {}),
        )
        with self._lock:
            generations = self._shards.setdefault(shard, OrderedDict())
            generations[generation] = service
            generations.move_to_end(generation)
            while len(generations) > self.KEEP_GENERATIONS:
                generations.popitem(last=False)
        return {"ok": True, "shard": shard, "generation": generation}

    def _lookup(self, shard: int, generation: Optional[int]) -> ShardService:
        with self._lock:
            generations = self._shards.get(shard)
            if not generations:
                raise LookupError(f"no shard {shard} installed on this worker")
            if generation is None:
                return next(reversed(generations.values()))
            service = generations.get(generation)
            if service is None:
                raise LookupError(
                    f"shard {shard} has no generation {generation} "
                    f"(holds {sorted(generations)})"
                )
            return service

    def execute(self, request: Dict[str, Any]) -> Any:
        """Dispatch one scattered request (the ``S``-frame payload)."""
        op = request.get("op")
        if op == "install":
            return self._install(request)
        shard = int(request["shard"])
        generation = request.get("generation")
        service = self._lookup(shard, generation)
        if op == "query":
            return service.shard_query(
                request["path"], prefix=request.get("prefix")
            )
        if op == "count":
            return service.shard_count(request["path"])
        if op == "connected":
            return service.shard_connected(request["u"], request["v"])
        if op == "distance":
            return service.shard_distance(request["u"], request["v"])
        if op == "stats":
            return service.stats()
        if op == "healthz":
            return service.healthz()
        raise ValueError(f"unknown shard op {op!r}")


# ---------------------------------------------------------------------------
# shard clients (the router's transport seam)
# ---------------------------------------------------------------------------


class LocalShardClient:
    """In-process shard transport: direct calls into a shared registry."""

    address: Optional[str] = None

    def __init__(self, shard_id: int, registry: ShardRegistry) -> None:
        self.shard_id = shard_id
        self._registry = registry

    def install(self, view: ShardView, generation: int,
                service_kwargs: Dict[str, Any]) -> None:
        self._registry.execute({
            "op": "install",
            "shard": self.shard_id,
            "generation": generation,
            "index": view.index,
            "owned_docs": view.owned_docs,
            "service": service_kwargs,
        })

    def request(self, payload: Dict[str, Any]) -> Any:
        return self._registry.execute({**payload, "shard": self.shard_id})

    def close(self) -> None:
        """Nothing to tear down in-process."""


class RpcShardClient:
    """RPC shard transport: ``S`` frames to a ``repro build-worker``.

    Connections are pooled and reused across requests; transport
    failures (refused/reset/timed-out sockets, corrupt replies) raise
    :class:`ShardUnavailableError` so the router can answer degraded
    instead of hanging. Connects retry with bounded backoff — a worker
    that is still binding its listener is transient, not dead.
    """

    def __init__(
        self,
        shard_id: int,
        address: str,
        *,
        connect_attempts: int = 4,
        call_timeout: Optional[float] = 30.0,
    ) -> None:
        self.shard_id = shard_id
        self.address = address
        self._connect_attempts = connect_attempts
        self._call_timeout = call_timeout
        self._pool: List[_WorkerConnection] = []
        self._pool_lock = threading.Lock()

    def _borrow(self) -> _WorkerConnection:
        with self._pool_lock:
            if self._pool:
                return self._pool.pop()
        return _WorkerConnection(
            self.address,
            attempts=self._connect_attempts,
            timeout=self._call_timeout,
        )

    def _unavailable(self, exc: Exception) -> ShardUnavailableError:
        return ShardUnavailableError(
            [self.shard_id],
            f"shard {self.shard_id} at {self.address} unavailable: {exc}",
        )

    def request(self, payload: Dict[str, Any]) -> Any:
        try:
            conn = self._borrow()
        except OSError as exc:
            raise self._unavailable(exc) from exc
        try:
            reply = conn.call(OP_SHARD, {**payload, "shard": self.shard_id})
        except RpcWorkerError:
            # the shard *answered* (with an in-worker failure): the
            # connection is intact, the error is the caller's problem
            self._give_back(conn)
            raise
        except (ConnectionError, OSError, EOFError, pickle.PickleError) as exc:
            conn.close()
            raise self._unavailable(exc) from exc
        self._give_back(conn)
        return reply

    def _give_back(self, conn: _WorkerConnection) -> None:
        with self._pool_lock:
            self._pool.append(conn)

    def install(self, view: ShardView, generation: int,
                service_kwargs: Dict[str, Any]) -> None:
        index = view.index.with_backend(
            "arrays" if view.index.backend == "sets" else view.index.backend
        )
        self.request({
            "op": "install",
            "generation": generation,
            "collection": view.index.collection,
            "cover": snapshot_to_bytes(index.cover),
            "backend": view.index.backend,
            "owned_docs": view.owned_docs,
            "service": service_kwargs,
        })

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, []
        for conn in pool:
            conn.close()


# ---------------------------------------------------------------------------
# the router
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _RouterState:
    """One published generation: the full index + its tag."""

    generation: int
    index: HopiIndex
    engine: QueryEngine


class ShardRouter:
    """Scatter-gather front end over per-shard :class:`ShardService`\\ s.

    Duck-types the :class:`QueryService` surface the HTTP layer
    dispatches to (``query``/``count``/``explain``/``connected``/
    ``distance``/``update``/``stats``/``healthz``/``note_legacy_hit``
    plus ``index``/``epoch``/``max_results``), so
    :func:`repro.service.http.make_server` serves a router unchanged.

    The router owns the authoritative full index (updates apply there,
    views re-derive from it) and never answers result queries from it —
    only ``explain`` (pure planning) and the unknown-element fallback
    of ``connected``/``distance`` touch it directly.

    Args:
        index: the full index; the router takes ownership.
        num_shards: how many shards to partition into.
        workers: ``host:port`` worker addresses for the RPC executor;
            ``None`` runs every shard in-process. Shard ``i`` lives on
            worker ``i % len(workers)``.
        fanout_timeout: per-shard answer deadline of one scatter before
            the request degrades (seconds).
        durable_store: optional
            :class:`~repro.storage.wal.DurableIndexStore` — update
            batches are WAL-logged against the authoritative full index
            before the new generation rolls out, same protocol as the
            single-process service.
    """

    def __init__(
        self,
        index: HopiIndex,
        num_shards: int,
        *,
        workers: Optional[Sequence[str]] = None,
        ontology=None,
        similarity_threshold: float = 0.3,
        max_results: int = 1000,
        result_cache_size: int = 4096,
        plan_cache_size: int = 1024,
        probe_cache_size: int = 8192,
        fanout_timeout: float = 30.0,
        connect_attempts: int = 4,
        durable_store=None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self._ontology = ontology
        self._similarity_threshold = similarity_threshold
        self._max_results = max_results
        self._service_kwargs: Dict[str, Any] = {
            "ontology": ontology,
            "similarity_threshold": similarity_threshold,
            "probe_cache_size": probe_cache_size,
        }
        self._fanout_timeout = fanout_timeout
        self._plans = LRUCache(plan_cache_size)
        self._results = CoalescingCache(result_cache_size)
        self._write_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._durable = durable_store
        self._started = time.time()
        self._published_at = self._started
        self._swaps = 0
        self._fanout_seconds: "deque[float]" = deque(maxlen=512)
        self._last_down: FrozenSet[int] = frozenset()

        if workers:
            self.executor = "rpc"
            addresses = [a.strip() for a in workers if a.strip()]
            if not addresses:
                raise ValueError("workers must contain at least one host:port")
            self._registry: Optional[ShardRegistry] = None
            self._clients: List[Any] = [
                RpcShardClient(
                    shard,
                    addresses[shard % len(addresses)],
                    connect_attempts=connect_attempts,
                    call_timeout=fanout_timeout,
                )
                for shard in range(num_shards)
            ]
        else:
            self.executor = "local"
            self._registry = ShardRegistry()
            self._clients = [
                LocalShardClient(shard, self._registry)
                for shard in range(num_shards)
            ]
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * num_shards),
            thread_name_prefix="shard-router",
        )
        self._install_generation(index.epoch, index)
        self._state = _RouterState(
            generation=index.epoch,
            index=index,
            engine=self._make_engine(index),
        )

    # -- plumbing -------------------------------------------------------
    def _make_engine(self, index: HopiIndex) -> QueryEngine:
        return QueryEngine(
            index,
            ontology=self._ontology,
            similarity_threshold=self._similarity_threshold,
            max_results=self._max_results,
        )

    def _install_generation(self, generation: int, index: HopiIndex) -> None:
        """Derive views of ``index`` and install them shard by shard
        (the rolling part of a rolling swap)."""
        views = derive_shard_views(index, self.num_shards)
        for view, client in zip(views, self._clients):
            try:
                client.install(view, generation, self._service_kwargs)
            except ShardUnavailableError:
                raise
            except (ConnectionError, OSError, EOFError) as exc:
                raise ShardUnavailableError(
                    [client.shard_id],
                    f"shard {client.shard_id} install failed: {exc}",
                ) from exc

    def _count(self, name: str) -> None:
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + 1

    def _prepare(self, path: Union[str, PathExpression]) -> PreparedQuery:
        if isinstance(path, PathExpression):
            return PreparedQuery(path)
        return self._plans.get_or_create(path, lambda: PreparedQuery(path))

    @property
    def epoch(self) -> int:
        """The currently served generation (matches the epoch a
        single-process service would report after the same updates)."""
        return self._state.generation

    @property
    def max_results(self) -> int:
        """The ranked-result truncation applied per query."""
        return self._max_results

    @property
    def index(self) -> HopiIndex:
        """The authoritative full index (treat as read-only)."""
        return self._state.index

    # -- scatter --------------------------------------------------------
    def _scatter(self, request: Dict[str, Any]) -> List[Any]:
        """Fan one request out to every shard; answers in shard order.

        Raises :class:`ShardUnavailableError` naming every shard that
        failed at the transport level or missed the fan-out deadline.
        """
        t0 = time.perf_counter()
        futures = [
            self._pool.submit(client.request, dict(request))
            for client in self._clients
        ]
        answers: List[Any] = [None] * len(futures)
        down: Dict[int, str] = {}
        for shard, future in enumerate(futures):
            try:
                answers[shard] = future.result(timeout=self._fanout_timeout)
            except ShardUnavailableError as exc:
                down[shard] = str(exc)
            except FutureTimeout:
                down[shard] = (
                    f"shard {shard} missed the {self._fanout_timeout}s "
                    "fan-out deadline"
                )
        self._fanout_seconds.append(time.perf_counter() - t0)
        if down:
            self._last_down = frozenset(down)
            raise ShardUnavailableError(
                sorted(down),
                "; ".join(down[s] for s in sorted(down)),
            )
        self._last_down = frozenset()
        return answers

    def _scatter_soft(self, request: Dict[str, Any]) -> List[Any]:
        """Like :meth:`_scatter` but per-shard failures become error
        payloads instead of aborting (stats/health probing)."""
        futures = [
            self._pool.submit(client.request, dict(request))
            for client in self._clients
        ]
        answers: List[Any] = []
        for shard, future in enumerate(futures):
            try:
                answers.append(future.result(timeout=self._fanout_timeout))
            except Exception as exc:
                answers.append({"shard": shard, "reachable": False,
                                "error": str(exc)})
        return answers

    # -- read path ------------------------------------------------------
    def _merge_query(
        self, state: _RouterState, prepared: PreparedQuery
    ) -> List[QueryResult]:
        """Scatter one query, k-way-merge the owned streams.

        Each shard ships its first ``prefix`` owned pairs — enough to
        cover the expression window plus the engine's ``max_results``
        cap — and its full owned count; the merged prefix reproduces
        the single-process ranked list (same total order, same
        truncation arithmetic) bit for bit.
        """
        window = prepared.logical.window
        if window is not None:
            w_offset = window.offset
            w_limit = window.limit
        else:
            w_offset, w_limit = 0, None
        cap = self._max_results if w_limit is None else min(w_limit, self._max_results)
        prefix = w_offset + cap
        replies = self._scatter({
            "op": "query",
            "generation": state.generation,
            "path": prepared.key,
            "prefix": prefix,
        })
        total_matches = sum(reply["matches"] for reply in replies)
        out_len = max(0, total_matches - w_offset)
        if w_limit is not None:
            out_len = min(out_len, w_limit)
        out_len = min(out_len, self._max_results)
        merged = heapq.merge(*[
            [(-score, tuple(binding)) for score, binding in reply["items"]]
            for reply in replies
        ])
        windowed = itertools.islice(merged, w_offset, w_offset + out_len)
        return [QueryResult(binding, -neg) for neg, binding in windowed]

    def query(
        self,
        path: Union[str, PathExpression],
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> QueryResponse:
        """Scattered, merged, cached — same contract and bit-identical
        payload as :meth:`QueryService.query`."""
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        t0 = time.perf_counter()
        state = self._state  # pin one generation for the request
        prepared = self._prepare(path)
        key = ("query", prepared.key, state.generation)
        results, source = self._results.get_or_compute(
            key, lambda: self._merge_query(state, prepared)
        )
        total = len(results)
        if offset:
            results = results[offset:]
        if limit is not None:
            results = results[:limit]
        self._count("query")
        return QueryResponse(
            epoch=state.generation,
            path=prepared.key,
            results=results,
            source=source,
            seconds=time.perf_counter() - t0,
            collection=state.index.collection,
            total=total,
            offset=offset,
            truncated=total >= self._max_results,
        )

    def count(self, path: Union[str, PathExpression]) -> Tuple[int, int]:
        """``(generation, global count)`` — the sum of owned counts."""
        state = self._state
        prepared = self._prepare(path)
        key = ("count", prepared.key, state.generation)

        def compute() -> int:
            replies = self._scatter({
                "op": "count",
                "generation": state.generation,
                "path": prepared.key,
            })
            return sum(reply["count"] for reply in replies)

        n, _ = self._results.get_or_compute(key, compute)
        self._count("count")
        return state.generation, n

    def explain(
        self, path: Union[str, PathExpression], *, mode: str = "evaluate"
    ) -> Tuple[int, Dict[str, Any]]:
        """Planning is pure — answered from the router's own engine
        over the full index, annotated with the sharding layout."""
        state = self._state
        prepared = self._prepare(path)
        plan = prepared.bind(state.engine, directional=(mode == "count"))
        payload = plan.describe(mode)
        payload["text"] = plan.explain(mode)
        payload["backend"] = state.index.backend
        payload["shards"] = self.num_shards
        self._count("explain")
        return state.generation, payload

    def connected(self, u: ElementId, v: ElementId) -> Tuple[int, bool]:
        """Scattered ``u ->* v``: the shard owning ``u``'s document is
        authoritative; unknown elements fall back to the full index so
        error behaviour matches single-process serving exactly."""
        state = self._state
        replies = self._scatter({
            "op": "connected", "generation": state.generation, "u": u, "v": v,
        })
        self._count("connected")
        for reply in replies:
            if reply.get("owned"):
                return state.generation, reply["connected"]
        return state.generation, state.index.connected(u, v)

    def distance(self, u: ElementId, v: ElementId) -> Tuple[int, Optional[int]]:
        """Scattered shortest link distance (see :meth:`connected`)."""
        state = self._state
        replies = self._scatter({
            "op": "distance", "generation": state.generation, "u": u, "v": v,
        })
        self._count("distance")
        for reply in replies:
            if reply.get("owned"):
                return state.generation, reply["distance"]
        return state.generation, state.index.distance(u, v)

    def note_legacy_hit(self, route: str) -> None:
        """Record a deprecated un-versioned route hit (stats parity)."""
        self._count(f"legacy:{route}")

    # -- write path: generations ---------------------------------------
    def update(self, ops: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        """Apply one ``/update`` batch as a new generation, rolling.

        The batch is applied to a shadow of the authoritative full
        index (all-or-nothing, same op vocabulary and failure contract
        as single-process :meth:`QueryService.update`); fresh views are
        installed **one shard at a time** — each shard keeps serving
        its previous generation throughout — and only then does the
        router flip its serving pointer. In-flight requests pinned to
        the old generation keep answering from it: no torn reads, no
        blocked readers.
        """
        ops = list(ops)
        if not ops:
            return {"epoch": self.epoch, "applied": 0, "reports": []}
        with self._write_lock:
            current = self._state
            # COW fork: unchanged label rows and documents stay shared
            # with the serving generation until an op dirties them
            shadow = current.index.cow_copy()
            try:
                reports = [apply_update_op(shadow, op) for op in ops]
            except UpdateError:
                raise
            except (KeyError, ValueError, TypeError, AttributeError) as exc:
                raise UpdateError(f"update failed: {exc}") from exc
            generation = max(shadow.epoch, current.generation + 1)
            shadow.epoch = generation
            if self._durable is not None:
                self._durable.log(generation, ops)
            self._install_generation(generation, shadow)
            self._state = _RouterState(
                generation=generation,
                index=shadow,
                engine=self._make_engine(shadow),
            )
            self._published_at = time.time()
            self._swaps += 1
            self._count("update")
            if self._durable is not None:
                self._durable.fire("published")
                if self._durable.checkpoint_due():
                    self._durable.checkpoint(shadow)
            return {
                "epoch": generation,
                "applied": len(reports),
                "reports": reports,
            }

    # -- introspection --------------------------------------------------
    def _fanout_stats(self) -> Dict[str, Any]:
        samples = sorted(self._fanout_seconds)
        if not samples:
            return {"scatters": 0}

        def at(q: float) -> float:
            return samples[min(len(samples) - 1, int(q * len(samples)))]

        return {
            "scatters": len(samples),
            "avg_ms": 1e3 * sum(samples) / len(samples),
            "p50_ms": 1e3 * at(0.50),
            "p99_ms": 1e3 * at(0.99),
        }

    def stats(self) -> Dict[str, Any]:
        """Router stats + one row per shard (epoch, hit rate, ...)."""
        state = self._state
        with self._counter_lock:
            counters = dict(self._counters)
        per_shard = self._scatter_soft({
            "op": "stats", "generation": state.generation,
        })
        rows = []
        for shard, (payload, client) in enumerate(zip(per_shard, self._clients)):
            row: Dict[str, Any] = {"shard": shard, "address": client.address}
            if payload.get("reachable") is False:
                row.update(payload)
            else:
                cache = payload.get("result_cache", {})
                row.update({
                    "reachable": True,
                    "epoch": payload.get("epoch"),
                    "owned_documents": payload.get("owned_documents"),
                    "elements": payload.get("elements"),
                    "hit_rate": cache.get("hit_rate"),
                    "requests": payload.get("requests", {}),
                })
            rows.append(row)
        return {
            "sharded": True,
            "shards": self.num_shards,
            "executor": self.executor,
            "generation": state.generation,
            "epoch": state.generation,
            "uptime_seconds": time.time() - self._started,
            "swaps": self._swaps,
            "backend": state.index.backend,
            "distance_aware": state.index.is_distance_aware,
            "documents": state.index.collection.num_documents,
            "elements": state.index.collection.num_elements,
            "links": state.index.collection.num_links,
            "requests": counters,
            "legacy_hits": sum(
                n for name, n in counters.items() if name.startswith("legacy:")
            ),
            "fan_out": self._fanout_stats(),
            "result_cache": self._results.stats(),
            "plan_cache": self._plans.stats(),
            "per_shard": rows,
        }

    def healthz(self) -> Dict[str, Any]:
        """Liveness/readiness with live per-shard reachability."""
        state = self._state
        per_shard = self._scatter_soft({
            "op": "healthz", "generation": state.generation,
        })
        shards = []
        down = []
        for shard, (payload, client) in enumerate(zip(per_shard, self._clients)):
            reachable = payload.get("reachable", True) is not False
            if not reachable:
                down.append(shard)
            shards.append({
                "shard": shard,
                "address": client.address,
                "reachable": reachable,
                "epoch": payload.get("epoch"),
            })
        status = "ok" if not down else "degraded"
        return {
            "status": status,
            "ready": not down,
            "sharded": True,
            "generation": state.generation,
            "epoch": state.generation,
            "epoch_age_seconds": time.time() - self._published_at,
            "uptime_seconds": time.time() - self._started,
            "swaps": self._swaps,
            "shards": shards,
            "shards_down": down,
        }

    def close(self) -> None:
        """Tear down the fan-out pool, every shard connection, and the
        durable store's file handles (the WAL stays crash-consistent
        without this — every append fsyncs before its generation
        publishes — but a graceful shutdown should not leak the fd)."""
        self._pool.shutdown(wait=False)
        for client in self._clients:
            client.close()
        if self._durable is not None:
            self._durable.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
