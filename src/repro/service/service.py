"""`QueryService` — many concurrent clients over one HOPI index.

The read path is lock-free: a request pins the current
:class:`~repro.service.epoch.EpochState` with one atomic reference read
and answers entirely from it. Three layers keep repeated work off the
index:

1. a **plan cache** (query text → parsed-and-lowered
   :class:`~repro.query.planner.PreparedQuery`; epoch-independent —
   the physical join order is re-derived per epoch, since cardinality
   estimates move with the tag index);
2. a **result cache** keyed by ``(canonical plan key, epoch)`` with
   single-flight coalescing — concurrent identical cold queries
   evaluate once, and every spelling of a query (whitespace, clause
   order) shares one entry;
3. a per-epoch **probe cache** — identical descendant-step probes
   (``source × candidate-list``) across *different* queries coalesce
   and are answered once per epoch.

The write path (:meth:`QueryService.update`, :meth:`QueryService.apply`,
:meth:`QueryService.reload_cover`) is a **group-commit loop over
copy-on-write shadows**: concurrent ``/update`` batches queue on a
pending list, one drainer forks the published index with
:meth:`~repro.core.hopi.HopiIndex.cow_copy` (sharing unchanged label
rows and documents instead of deep-copying them), applies every queued
batch to that shadow, and publishes **once**. Each batch stays
all-or-nothing — it runs against its own sub-fork, so a failing batch
rolls back alone while its neighbours commit. Readers never wait and
never observe a half-updated index.

With a :class:`~repro.storage.wal.DurableIndexStore` attached, the
drainer appends the applied wire-format ops to the update WAL (fsync)
*before* publishing and checkpoints the snapshot on an interval, so a
crashed server recovers its latest acknowledged epoch on restart.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.hopi import HopiIndex

# the op vocabulary lives in the core layer so the WAL can replay it;
# re-exported here because the shard router, the HTTP API, and older
# callers import them from the service module
from repro.core.ops import (  # noqa: F401  (re-exports)
    UpdateError,
    _apply_insert_document,
    apply_update_op,
)
from repro.query.engine import Probe, QueryEngine, QueryResult, StepKey
from repro.query.ontology import TagOntology
from repro.query.pathexpr import PathExpression
from repro.query.planner import PreparedQuery
from repro.service.cache import LRUCache
from repro.service.coalesce import CoalescingCache
from repro.service.epoch import EpochHolder, EpochState
from repro.storage.snapshot import load_snapshot
from repro.xmlmodel.model import ElementId

_MISSING = object()


@dataclass
class _PendingBatch:
    """One queued ``/update`` batch awaiting the group-commit drainer.

    The submitting thread blocks on ``done``; the drainer fills either
    ``reports`` (batch committed in the published epoch) or ``error``
    (batch rolled back — its sub-fork was discarded) before setting it.
    """

    ops: List[Dict[str, Any]]
    done: threading.Event = field(default_factory=threading.Event)
    reports: Optional[List[Dict[str, Any]]] = None
    error: Optional[BaseException] = None
    epoch: int = -1


class _EpochProbe:
    """The coalescing descendant-probe of one epoch.

    Callable with the plain :data:`~repro.query.engine.Probe` shape
    (one forward probe per source, single-flight coalesced), plus the
    two optional batch hooks the executor feature-detects:

    * :meth:`many` answers a whole frontier block — cached sources
      straight from the LRU, the misses computed in **one**
      ``index.intersect_many`` round-trip and written back, so a block
      costs one candidate translation instead of one per source.
    * :meth:`backward` caches ``ancestors``-side materialisations under
      ``("bwd", target, step_key)`` in the same per-epoch cache.
      Backward probes used to bypass the probe cache entirely (every
      backward-planned query re-materialised the same ancestor
      intersections); now a second backward-heavy query over the same
      epoch hits.

    Keyed by ``(source, step_key)`` / ``("bwd", target, step_key)`` —
    sound because within an epoch the engine's memoized candidate list
    for a step key is fixed, so identical keys mean identical probes.
    """

    __slots__ = ("_state",)

    def __init__(self, state: EpochState) -> None:
        self._state = state

    def __call__(
        self, source: ElementId, step_key: StepKey,
        cand_elems: Sequence[ElementId],
    ) -> List[int]:
        state = self._state

        def compute() -> List[int]:
            flags = state.index.connected_many(source, cand_elems)
            return [i for i, ok in enumerate(flags) if ok]

        reach, _ = state.probes.get_or_compute((source, step_key), compute)
        return reach

    def many(
        self, sources: Sequence[ElementId], step_key: StepKey,
        cand_elems: Sequence[ElementId],
    ) -> Dict[ElementId, List[int]]:
        state = self._state
        answers: Dict[ElementId, List[int]] = {}
        missing: List[ElementId] = []
        for source in sources:
            cached = state.probes.cache.get((source, step_key), _MISSING)
            if cached is _MISSING:
                missing.append(source)
            else:
                answers[source] = cached
        if missing:
            rows = state.index.intersect_many(missing, cand_elems)
            for source, row in zip(missing, rows):
                state.probes.cache.put((source, step_key), row)
                answers[source] = row
        return answers

    def backward(
        self, target: ElementId, step_key: StepKey,
        compute: Callable[[], List[ElementId]],
    ) -> List[ElementId]:
        value, _ = self._state.probes.get_or_compute(
            ("bwd", target, step_key), compute
        )
        return value


@dataclass(frozen=True)
class QueryResponse:
    """One answered query, tagged with the epoch that answered it.

    Attributes:
        epoch: the index generation the whole answer came from.
        path: the canonical (normalised) path expression — the plan key.
        results: ranked matches, windowed by the request's
            ``offset``/``limit`` (shared cached list slice — do not
            mutate).
        source: ``"hit"`` / ``"computed"`` / ``"coalesced"`` — how the
            result cache served this request.
        seconds: service-side latency of this request.
        collection: the *same epoch's* collection — render result
            elements from this, never from ``service.index`` (which may
            have hot-swapped since the query pinned its epoch).
        total: size of the full ranked result list before the request
            window was applied (pagination: ``offset + len(results) <
            total`` means more pages exist).
        offset: the request offset that produced ``results``.
        truncated: True when the ranked list hit the engine's
            ``max_results`` cap, so ``total`` is a lower bound — use
            :meth:`QueryService.count` for the exact match count.
    """

    epoch: int
    path: str
    results: List[QueryResult]
    source: str
    seconds: float
    collection: Any = None
    total: int = 0
    offset: int = 0
    truncated: bool = False

    @property
    def cached(self) -> bool:
        """True when the answer came from a cache (hit or coalesced)."""
        return self.source != "computed"


class QueryService:
    """A thread-safe serving tier over one :class:`HopiIndex`.

    The service takes ownership of ``index``: callers must not mutate
    it afterwards (mutations go through :meth:`update` / :meth:`apply`,
    which operate on shadows and hot-swap).

    Args:
        index: the index to publish as epoch 0's generation.
        ontology: tag ontology for ``~tag`` steps.
        similarity_threshold: forwarded to the query engine.
        max_results: ranked-result truncation per query.
        result_cache_size: entries in the ``(path, epoch)`` result LRU.
        probe_cache_size: per-epoch descendant-probe LRU entries.
        plan_cache_size: parsed-path LRU entries.
        durable_store: optional
            :class:`~repro.storage.wal.DurableIndexStore` — when set,
            every committed ``/update`` batch is WAL-logged before its
            epoch publishes, and the snapshot is checkpointed on the
            store's interval (or immediately after non-loggable writes
            via :meth:`apply` / :meth:`reload_cover`).
    """

    def __init__(
        self,
        index: HopiIndex,
        *,
        ontology: Optional[TagOntology] = None,
        similarity_threshold: float = 0.3,
        max_results: int = 1000,
        result_cache_size: int = 4096,
        probe_cache_size: int = 8192,
        plan_cache_size: int = 1024,
        durable_store: Optional[Any] = None,
    ) -> None:
        self._ontology = ontology
        self._similarity_threshold = similarity_threshold
        self._max_results = max_results
        self._probe_cache_size = probe_cache_size
        self._plans = LRUCache(plan_cache_size)
        self._results = CoalescingCache(result_cache_size)
        self._holder = EpochHolder(self._make_state(index.epoch, index))
        self._write_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._pending: List[_PendingBatch] = []
        self._pending_lock = threading.Lock()
        self._durable = durable_store
        self._started = time.time()
        self._published_at = self._started
        # ingestion bookkeeping (fed by repro.ingest.IngestPipeline via
        # record_ingest; surfaced as the /v1/metrics freshness gauge)
        self._ingest_lock = threading.Lock()
        self._ingest_docs = 0
        self._ingest_batches = 0
        self._ingest_last_at: Optional[float] = None
        self._ingest_lags: "deque[float]" = deque(maxlen=512)

    # ------------------------------------------------------------------
    # epoch plumbing
    # ------------------------------------------------------------------
    def _make_state(self, epoch: int, index: HopiIndex) -> EpochState:
        engine = QueryEngine(
            index,
            ontology=self._ontology,
            similarity_threshold=self._similarity_threshold,
            max_results=self._max_results,
        )
        return EpochState(
            epoch=epoch,
            index=index,
            engine=engine,
            probes=CoalescingCache(self._probe_cache_size),
        )

    def _probe_for(self, state: EpochState) -> Probe:
        """The coalescing probe for one epoch (see :class:`_EpochProbe`
        for the caching/batching contract)."""
        return _EpochProbe(state)

    def _count(self, name: str) -> None:
        with self._counter_lock:
            self._counters[name] = self._counters.get(name, 0) + 1

    @property
    def epoch(self) -> int:
        """The currently published epoch."""
        return self._holder.current.epoch

    @property
    def max_results(self) -> int:
        """The ranked-result truncation applied per query."""
        return self._max_results

    @property
    def index(self) -> HopiIndex:
        """The currently published index (treat as read-only)."""
        return self._holder.current.index

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def _prepare(self, path: Union[str, PathExpression]) -> PreparedQuery:
        """Parse + lower once per distinct query text (plan cache)."""
        if isinstance(path, PathExpression):
            return PreparedQuery(path)
        return self._plans.get_or_create(path, lambda: PreparedQuery(path))

    def query(
        self,
        path: Union[str, PathExpression],
        *,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> QueryResponse:
        """Evaluate ``path`` against the current epoch, cached.

        ``offset``/``limit`` window the returned (already ranked)
        results; the cache always holds the full ``max_results`` list
        so requests with different windows share one entry, and
        ``QueryResponse.total`` reports the pre-window size for
        pagination.
        """
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        t0 = time.perf_counter()
        state = self._holder.current  # pin one epoch for the request
        prepared = self._prepare(path)
        key = ("query", prepared.key, state.epoch)
        results, source = self._results.get_or_compute(
            key,
            lambda: state.engine.evaluate(
                prepared, index=state.index, probe=self._probe_for(state)
            ),
        )
        total = len(results)
        if offset:
            results = results[offset:]
        if limit is not None:
            results = results[:limit]
        self._count("query")
        return QueryResponse(
            epoch=state.epoch,
            path=prepared.key,
            results=results,
            source=source,
            seconds=time.perf_counter() - t0,
            collection=state.index.collection,
            total=total,
            offset=offset,
            truncated=total >= self._max_results,
        )

    def count(self, path: Union[str, PathExpression]) -> Tuple[int, int]:
        """``(epoch, total match count)`` — unranked, untruncated."""
        state = self._holder.current
        prepared = self._prepare(path)
        key = ("count", prepared.key, state.epoch)
        n, _ = self._results.get_or_compute(
            key,
            lambda: state.engine.count(
                prepared, index=state.index, probe=self._probe_for(state)
            ),
        )
        self._count("count")
        return state.epoch, n

    def explain(
        self, path: Union[str, PathExpression], *, mode: str = "evaluate"
    ) -> Tuple[int, Dict[str, Any]]:
        """``(epoch, plan description)`` for the ``/v1/explain``
        endpoint: the physical plan the current epoch's engine would
        run, as a JSON-safe dict plus its human-readable rendering.

        ``mode`` selects which execution profile the payload carries
        (``"evaluate"``, ``"stream"``, ``"count"``, ``"exists"``);
        ``count`` describes the directional plan the counting path
        actually runs.
        """
        state = self._holder.current
        prepared = self._prepare(path)
        plan = prepared.bind(state.engine, directional=(mode == "count"))
        payload = plan.describe(mode)
        payload["text"] = plan.explain(mode)
        payload["backend"] = state.index.backend
        self._count("explain")
        return state.epoch, payload

    def note_legacy_hit(self, route: str) -> None:
        """Record a request to a deprecated un-versioned route (the
        ``legacy_hits`` counters in :meth:`stats`)."""
        self._count(f"legacy:{route}")

    def connected(self, u: ElementId, v: ElementId) -> Tuple[int, bool]:
        """``(epoch, u ->* v)``."""
        state = self._holder.current
        self._count("connected")
        return state.epoch, state.index.connected(u, v)

    def distance(self, u: ElementId, v: ElementId) -> Tuple[int, Optional[int]]:
        """``(epoch, shortest link distance or None)``."""
        state = self._holder.current
        self._count("distance")
        return state.epoch, state.index.distance(u, v)

    # ------------------------------------------------------------------
    # write path: group-commit over copy-on-write shadows
    # ------------------------------------------------------------------
    def _publish(self, shadow: HopiIndex) -> EpochState:
        state = self._make_state(shadow.epoch, shadow)
        self._holder.publish(state)
        self._published_at = time.time()
        return state

    def apply(self, mutator: Callable[[HopiIndex], Any]) -> Tuple[int, Any]:
        """Run an arbitrary maintenance function against a shadow and
        hot-swap it in.

        ``mutator`` receives a copy-on-write fork of the published index
        (unchanged label rows and documents stay shared until first
        write) and may call any of its Section-6 maintenance methods
        (each bumps the shadow's epoch); if it mutates without bumping,
        the epoch is advanced for it. Readers are never blocked; the
        swap is atomic.

        An arbitrary mutator is not expressible as wire-format ops, so
        with a durable store attached this path forces a full snapshot
        checkpoint instead of a WAL append.

        Returns:
            ``(new epoch, mutator's return value)``.
        """
        with self._write_lock:
            current = self._holder.current
            shadow = current.index.cow_copy()
            result = mutator(shadow)
            if shadow.epoch <= current.epoch:
                shadow.epoch = current.epoch + 1
            self._publish(shadow)
            self._count("update")
            if self._durable is not None:
                self._durable.fire("published")
                self._durable.checkpoint(shadow)
            epoch = shadow.epoch
        # batches that queued while we held the lock would otherwise
        # strand until the next writer arrives
        self._drain()
        return epoch, result

    def update(self, ops: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        """Apply a batch of maintenance operations, all-or-nothing.

        Each op is a dict with an ``"op"`` discriminator (the ``/update``
        endpoint's wire format):

        * ``{"op": "insert_element", "parent": id, "tag": t}``
        * ``{"op": "insert_edge", "source": u, "target": v}``
        * ``{"op": "delete_edge", "source": u, "target": v}``
        * ``{"op": "delete_document", "doc_id": d}``
        * ``{"op": "insert_document", "doc_id": d, "root_tag": t,
          "children": [{"ref": r, "parent": ref-or-id, "tag": t}, ...],
          "links": [[ref-or-id, ref-or-id], ...]}``
        * ``{"op": "rebuild", ...build kwargs...}``

        Concurrent callers group-commit: their batches queue, one
        drainer applies all of them to a single copy-on-write shadow
        and publishes once. Each batch remains all-or-nothing — a
        failure raises :class:`UpdateError` *for that batch only* and
        discards its sub-fork; sibling batches still commit.

        Returns:
            ``{"epoch": new epoch, "applied": n, "reports": [...]}``.
        """
        ops = list(ops)
        if not ops:
            return {"epoch": self.epoch, "applied": 0, "reports": []}
        batch = _PendingBatch(ops=ops)
        with self._pending_lock:
            self._pending.append(batch)
        self._drain()
        batch.done.wait()
        if batch.error is not None:
            raise batch.error
        return {
            "epoch": batch.epoch,
            "applied": len(batch.reports),
            "reports": batch.reports,
        }

    def _drain(self) -> None:
        """Commit queued batches until the pending list is empty.

        The writer lock is taken non-blocking: if another thread holds
        it, it is mid-:meth:`_commit` and will re-enter this loop after
        releasing, so our batch cannot strand — every path that
        releases the lock re-checks the queue afterwards.
        """
        while True:
            with self._pending_lock:
                if not self._pending:
                    return
            if not self._write_lock.acquire(blocking=False):
                return
            try:
                self._commit()
            finally:
                self._write_lock.release()

    def _commit(self) -> None:
        """Apply every queued batch to one COW shadow and publish once.

        Called with the writer lock held. Each batch runs against its
        own sub-fork of the accumulated shadow: success folds the fork
        in, failure discards it — per-batch rollback without touching
        neighbours. With a durable store, the applied ops are WAL-logged
        (fsync) *before* the publish, so an acknowledged epoch survives
        a crash.
        """
        with self._pending_lock:
            batches, self._pending = self._pending, []
        if not batches:
            return
        current = self._holder.current
        shadow = current.index.cow_copy()
        committed: List[_PendingBatch] = []
        logged_ops: List[Dict[str, Any]] = []
        for batch in batches:
            trial = shadow.cow_copy()
            try:
                reports = [self._apply_op(trial, op) for op in batch.ops]
            except UpdateError as exc:
                batch.error = exc
            except (KeyError, ValueError, TypeError, AttributeError) as exc:
                # malformed op shapes (wrong types, missing fields,
                # children that are not objects, ...) fail this batch
                # as a 400 — its sub-fork is discarded
                batch.error = UpdateError(f"update failed: {exc}")
                batch.error.__cause__ = exc
            else:
                shadow = trial
                batch.reports = reports
                logged_ops.extend(batch.ops)
                committed.append(batch)
        try:
            if committed:
                if shadow.epoch <= current.epoch:
                    shadow.epoch = current.epoch + 1
                if self._durable is not None:
                    self._durable.log(shadow.epoch, logged_ops)
                self._publish(shadow)
                for batch in committed:
                    batch.epoch = shadow.epoch
                    self._count("update")
                if self._durable is not None:
                    self._durable.fire("published")
                    if self._durable.checkpoint_due():
                        self._durable.checkpoint(shadow)
        except BaseException as exc:
            # a crash hook (or store failure) fired mid-commit; the
            # batches were not (durably) published — surface the fault
            # to every caller still waiting instead of hanging them
            delivered = False
            for batch in batches:
                if batch.error is None and batch.epoch < 0:
                    batch.error = exc
                    delivered = True
            if not delivered:
                # the epoch already published (e.g. the crash hook fired
                # at the checkpoint boundary) — no waiter can carry the
                # fault, so it surfaces from the drainer itself
                raise
        finally:
            for batch in batches:
                batch.done.set()

    def _apply_op(self, shadow: HopiIndex, op: Dict[str, Any]) -> Dict[str, Any]:
        return apply_update_op(shadow, op)

    def reload_cover(self, snapshot) -> int:
        """Hot-swap the cover from a CSR snapshot, keeping the
        collection.

        The zero-downtime reload path for offline rebuilds (Section 6:
        "occasional rebuilds of the index may be considered"): a fresh
        cover built elsewhere is loaded into a shadow generation and
        published atomically while readers keep answering on the old
        one. The snapshot must cover the current collection's elements.

        Args:
            snapshot: a snapshot file path, or a
                :class:`~repro.storage.snapshot.SnapshotCoverStore`
                (re-read via its ``reload()``, so a polling maintenance
                thread can share one store).

        Returns:
            The new epoch.
        """
        from repro.storage.snapshot import SnapshotCoverStore

        with self._write_lock:
            current = self._holder.current
            if isinstance(snapshot, SnapshotCoverStore):
                cover = snapshot.reload().copy()
            else:
                cover = load_snapshot(snapshot)
            missing = [
                e for e in current.index.collection.elements
                if e not in cover.nodes
            ]
            if missing:
                raise UpdateError(
                    f"snapshot does not cover the collection: "
                    f"{len(missing)} elements missing (e.g. {missing[:3]})"
                )
            fresh = HopiIndex(
                current.index.collection, cover, stats=current.index.stats
            )
            fresh.epoch = current.epoch + 1
            self._publish(fresh)
            self._count("reload")
            if self._durable is not None:
                # a wholesale cover swap is not expressible as wire ops
                self._durable.fire("published")
                self._durable.checkpoint(fresh)
            epoch = fresh.epoch
        self._drain()
        return epoch

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """Liveness/readiness payload for ``/v1/healthz``.

        A single-process service that can read its published epoch is
        both live and ready; ``epoch_age_seconds`` (time since the last
        hot-swap, or since startup) lets a load balancer spot a replica
        whose maintenance feed has stalled.
        """
        state = self._holder.current
        return {
            "status": "ok",
            "ready": True,
            "sharded": False,
            "epoch": state.epoch,
            "epoch_age_seconds": time.time() - self._published_at,
            "uptime_seconds": time.time() - self._started,
            "swaps": self._holder.swaps,
        }

    def record_ingest(
        self, docs: int, lag_seconds: Sequence[float]
    ) -> None:
        """Note one acknowledged ingestion batch (pipeline hook).

        ``lag_seconds`` are the batch's per-document freshness lags
        (discovery -> publish); the most recent 512 samples back the
        ``/v1/metrics`` freshness gauge.
        """
        with self._ingest_lock:
            self._ingest_docs += docs
            self._ingest_batches += 1
            self._ingest_last_at = time.time()
            self._ingest_lags.extend(lag_seconds)

    def ingest_stats(self) -> Dict[str, Any]:
        """The ingestion/freshness gauge reported by ``/v1/metrics``."""
        with self._ingest_lock:
            docs = self._ingest_docs
            batches = self._ingest_batches
            last_at = self._ingest_last_at
            lags = sorted(self._ingest_lags)

        def at(fraction: float) -> Optional[float]:
            if not lags:
                return None
            index = min(
                len(lags) - 1,
                max(0, int(round(fraction * (len(lags) - 1)))),
            )
            return lags[index] * 1e3
        return {
            "docs_total": docs,
            "batches_total": batches,
            "last_batch_age_seconds": (
                time.time() - last_at if last_at is not None else None
            ),
            "freshness_p50_ms": at(0.50),
            "freshness_p99_ms": at(0.99),
        }

    def close(self) -> None:
        """Release the durable store's file handles (flush the WAL).

        Graceful shutdown only — crash recovery never needs it (every
        WAL append fsyncs before its epoch publishes).
        """
        if self._durable is not None:
            self._durable.close()

    def stats(self) -> Dict[str, Any]:
        """A point-in-time snapshot for the ``/stats`` endpoint."""
        state = self._holder.current
        with self._counter_lock:
            counters = dict(self._counters)
        return {
            "epoch": state.epoch,
            "uptime_seconds": time.time() - self._started,
            "swaps": self._holder.swaps,
            "backend": state.index.backend,
            "distance_aware": state.index.is_distance_aware,
            "documents": state.index.collection.num_documents,
            "elements": state.index.collection.num_elements,
            "links": state.index.collection.num_links,
            "cover_entries": state.index.cover.size,
            "requests": counters,
            "legacy_hits": sum(
                n for name, n in counters.items() if name.startswith("legacy:")
            ),
            "result_cache": self._results.stats(),
            "plan_cache": self._plans.stats(),
            "probe_cache": state.probes.stats(),
        }
