"""Command-line interface: build, query and maintain HOPI indexes.

Usage (also via ``python -m repro``)::

    # index a directory of XML files into a self-contained database
    python -m repro build docs/*.xml -o index.db --strategy recursive

    # same, but cover partitions concurrently in a 4-process pool
    python -m repro build docs/*.xml -o index.db --workers 4 \\
        --partitioner node-weight

    # generate a synthetic benchmark collection as XML files
    python -m repro generate dblp -n 100 -o corpus/

    # query a persisted index (predicates, windows, EXPLAIN)
    python -m repro query index.db "//article//author"
    python -m repro query index.db "//article[keywords]//cite" --limit 10
    python -m repro query index.db "//*//author" --explain
    python -m repro connected index.db 3 17
    python -m repro stats index.db

    # incremental maintenance on the persisted index
    python -m repro delete-doc index.db dblp42

    # serve the index over HTTP: the versioned /v1 API (query, count,
    # explain, connected, distance, update, stats) with concurrent
    # queries, result caching and zero-downtime update hot-swap;
    # un-versioned routes keep answering as deprecated aliases
    python -m repro serve index.db --port 8080 --backend arrays

Documents are identified by file stem; XLink ``href`` attributes resolve
to links exactly as in :func:`repro.xmlmodel.parser.load_collection`.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Dict, List, Optional, Sequence

from repro.core.hopi import BACKENDS, HopiIndex
from repro.query.engine import QueryEngine
from repro.storage.db import SQLiteCoverStore, load_index, persist_index
from repro.xmlmodel.export import export_collection
from repro.xmlmodel.generator import dblp_like, inex_like
from repro.xmlmodel.parser import load_collection


def _read_documents(paths: Sequence[str]) -> Dict[str, str]:
    documents: Dict[str, str] = {}
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files = sorted(path.glob("*.xml"))
        else:
            files = [path]
        for f in files:
            if f.stem in documents:
                raise SystemExit(f"duplicate document id {f.stem!r} ({f})")
            documents[f.stem] = f.read_text(encoding="utf-8")
    if not documents:
        raise SystemExit("no XML documents found")
    return documents


def _is_int(spec: str) -> bool:
    try:
        int(spec)
    except ValueError:
        return False
    return True


def parse_workers(
    spec: Optional[str], executor: Optional[str]
) -> Dict[str, object]:
    """Interpret ``--workers``: a pool size, or rpc worker addresses.

    ``--workers 4`` means a 4-worker pool; ``--workers host:port,...``
    (with ``--executor rpc``, which it implies) names the build-worker
    daemons to ship tasks to.
    """
    if spec is None or _is_int(spec):
        if executor == "rpc":
            raise SystemExit(
                "--executor rpc needs worker addresses: "
                "--workers host:port[,host:port...]"
            )
        return {
            "workers": int(spec) if spec is not None else None,
            "rpc_workers": None,
        }
    addresses = [a.strip() for a in spec.split(",") if a.strip()]
    if not all(":" in a for a in addresses) or not addresses:
        raise SystemExit(
            f"--workers must be a count or host:port[,host:port...], "
            f"got {spec!r}"
        )
    if executor not in (None, "rpc"):
        raise SystemExit(
            f"--workers with addresses implies --executor rpc, "
            f"not {executor!r}"
        )
    return {"workers": None, "rpc_workers": addresses}


def cmd_build(args: argparse.Namespace) -> int:
    collection = load_collection(_read_documents(args.inputs))
    print(
        f"loaded {collection.num_documents} documents, "
        f"{collection.num_elements} elements, {collection.num_links} links"
    )
    index = HopiIndex.build(
        collection,
        strategy=args.strategy,
        partitioner=args.partitioner,
        partition_limit=args.partition_limit,
        edge_weight=args.edge_weight,
        distance=args.distance,
        backend=args.backend,
        executor=args.executor,
        join_shards=args.join_shards,
        **parse_workers(args.workers, args.executor),
    )
    stats = index.stats
    print(
        f"built in {stats.seconds_total:.2f}s "
        f"({stats.num_partitions} partitions, |L| = {stats.cover_size}, "
        f"backend = {stats.backend}, executor = {stats.executor}"
        + (f", workers = {stats.workers}" if stats.executor != "serial" else "")
        + (f", join shards = {stats.join_shards}" if stats.join_shards > 1 else "")
        + ")"
    )
    persist_index(index, args.output).close()
    print(f"written to {args.output}")
    return 0


def cmd_build_worker(args: argparse.Namespace) -> int:
    from repro.core.rpc import parse_address, serve_worker

    host, port = parse_address(args.listen)
    server = serve_worker(host, port)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"build worker listening on {bound_host}:{bound_port} "
        f"(point `repro build --executor rpc --workers "
        f"{bound_host}:{bound_port}` at it; Ctrl-C stops)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "dblp":
        collection = dblp_like(args.num_docs, seed=args.seed)
    else:
        collection = inex_like(args.num_docs, seed=args.seed)
    out = pathlib.Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    for doc_id, text in export_collection(collection).items():
        (out / f"{doc_id}.xml").write_text(text, encoding="utf-8")
    print(
        f"wrote {collection.num_documents} documents "
        f"({collection.num_elements} elements, {collection.num_links} links) "
        f"to {out}/"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.query.pathexpr import parse_path

    index = load_index(args.index, backend=args.backend)
    engine = QueryEngine(
        index,
        max_results=args.max_results,
        similarity_threshold=args.similarity_threshold,
        planner=args.planner,
    )
    expr = parse_path(args.path)
    # CLI window flags override the expression's own limit/offset; a
    # plain `repro query` still prints the top 20 like it always did
    limit = args.limit if args.limit is not None else expr.limit
    if limit is None:
        limit = 20
    offset = args.offset if args.offset is not None else expr.offset
    expr = replace(expr, limit=limit, offset=offset)
    if args.explain:
        print(engine.explain(expr))
        return 0
    results = engine.evaluate(expr)
    collection = index.collection
    for r in results:
        element = collection.elements[r.target]
        text = f" {element.text!r}" if element.text else ""
        print(
            f"{r.score:6.3f}  {element.doc}#{element.eid} "
            f"<{element.tag}>{text}"
        )
    print(f"{len(results)} match(es)", file=sys.stderr)
    return 0


def cmd_connected(args: argparse.Namespace) -> int:
    with SQLiteCoverStore(args.index) as store:
        result = store.connected(args.source, args.target)
        print("connected" if result else "not connected")
        if args.distance:
            print(f"distance: {store.distance(args.source, args.target)}")
    return 0 if result else 1


def cmd_stats(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    collection = index.collection
    report = index.size_report(with_closure=args.closure)
    print(f"documents:        {collection.num_documents}")
    print(f"elements:         {collection.num_elements}")
    print(f"links:            {collection.num_links}")
    print(f"cover entries:    {report.cover_size}")
    print(f"entries/node:     {report.entries_per_node:.2f}")
    print(f"stored integers:  {report.stored_integers} (with backward index)")
    if report.closure_connections is not None:
        print(f"closure:          {report.closure_connections} connections")
        print(f"compression:      {report.compression:.1f}x")
    kind = "distance-aware" if index.is_distance_aware else "reachability"
    print(f"cover type:       {kind}")
    return 0


def cmd_delete_doc(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    if args.doc_id not in index.collection.documents:
        raise SystemExit(f"no document {args.doc_id!r} in the index")
    report = index.delete_document(args.doc_id)
    path_taken = "fast (Theorem 2)" if report.separating else "general (Theorem 3)"
    print(
        f"deleted {args.doc_id!r} via the {path_taken} path "
        f"in {report.seconds * 1000:.1f} ms"
    )
    with SQLiteCoverStore(args.index) as store:
        store.save_collection(index.collection)
        store.save_cover(index.cover)
    print(f"updated {args.index}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import QueryService, ShardRouter, make_server

    durable_store = None
    if args.store:
        from repro.storage.wal import DurableIndexStore

        durable_store = DurableIndexStore(
            args.store, checkpoint_interval=args.checkpoint_interval
        )
        if durable_store.exists():
            # crash recovery: snapshot + replay of WAL records newer
            # than the snapshot epoch — args.index is only the seed
            index = durable_store.recover(backend=args.backend)
            print(
                f"recovered epoch {index.epoch} from {args.store}",
                flush=True,
            )
        else:
            index = load_index(args.index, backend=args.backend)
            durable_store.initialize(index)
            print(f"initialised durable store {args.store}", flush=True)
    else:
        index = load_index(args.index, backend=args.backend)
    workers = None
    if args.shard_workers:
        workers = [a.strip() for a in args.shard_workers.split(",") if a.strip()]
    if args.shards is not None or workers:
        num_shards = args.shards if args.shards is not None else len(workers)
        service = ShardRouter(
            index,
            num_shards,
            workers=workers,
            max_results=args.max_results,
            similarity_threshold=args.similarity_threshold,
            result_cache_size=args.result_cache,
            probe_cache_size=args.probe_cache,
            durable_store=durable_store,
        )
        mode = (
            f"shards={num_shards} ({service.executor})"
        )
    else:
        service = QueryService(
            index,
            max_results=args.max_results,
            similarity_threshold=args.similarity_threshold,
            result_cache_size=args.result_cache,
            probe_cache_size=args.probe_cache,
            durable_store=durable_store,
        )
        mode = "unsharded"
    if args.use_async:
        from repro.service.asyncio_http import AsyncServiceServer

        import asyncio

        server = AsyncServiceServer(
            service,
            max_inflight=args.max_inflight,
            queue_depth=args.queue_depth,
            max_client_share=args.max_client_share,
            verbose=args.verbose,
            max_requests=args.max_requests,
        )

        async def _serve() -> None:
            host, port = await server.start(args.host, args.port)
            print(
                f"serving {args.index} on http://{host}:{port} "
                f"(backend={index.backend}, epoch={service.epoch}, {mode}, "
                f"async max_inflight={args.max_inflight} "
                f"queue_depth={args.queue_depth})",
                flush=True,
            )
            await server.wait_closed()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            closer = getattr(service, "close", None)
            if closer is not None:
                closer()
        return 0
    server = make_server(service, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(
        f"serving {args.index} on http://{host}:{port} "
        f"(backend={index.backend}, epoch={service.epoch}, {mode})",
        flush=True,
    )
    try:
        if args.max_requests is not None:
            for _ in range(args.max_requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
        closer = getattr(service, "close", None)
        if closer is not None:
            closer()
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    index.verify()
    print("cover verified against a fresh transitive-closure oracle ✓")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro.ingest import FrontierCheckpoint, IngestPipeline, make_source
    from repro.service import QueryService
    from repro.storage.wal import DurableIndexStore
    from repro.xmlmodel.model import Collection

    source = make_source(args.source, seed=args.seed)
    store = DurableIndexStore(
        args.store, checkpoint_interval=args.checkpoint_interval
    )
    cursor = 0
    if store.exists():
        checkpoint = FrontierCheckpoint.load(args.store)
        if not args.resume:
            raise SystemExit(
                f"store {args.store} already holds an index"
                + (
                    f" (frontier at document {checkpoint.cursor}"
                    f" of {checkpoint.source!r})" if checkpoint else ""
                )
                + "; pass --resume to continue the ingest, or point "
                "--store at a fresh directory"
            )
        if checkpoint is not None:
            if checkpoint.source != source.spec or checkpoint.seed != args.seed:
                raise SystemExit(
                    f"frontier checkpoint was written by source "
                    f"{checkpoint.source!r} seed {checkpoint.seed}, not "
                    f"{source.spec!r} seed {args.seed}; refusing to mix "
                    "streams in one store"
                )
            cursor = checkpoint.cursor
        index = store.recover(backend=args.backend)
        print(
            f"resuming: recovered epoch {index.epoch} "
            f"({index.collection.num_documents} documents), frontier at "
            f"document {cursor}",
            flush=True,
        )
    else:
        if args.resume:
            raise SystemExit(
                f"nothing to resume: {args.store} holds no durable store"
            )
        index = HopiIndex.build(
            Collection(), backend=args.backend or "arrays"
        )
        store.initialize(index)
        print(f"initialised durable store {args.store}", flush=True)

    service = QueryService(index, durable_store=store)
    pipeline = IngestPipeline(
        service,
        source,
        batch_docs=args.batch_docs,
        store_dir=args.store,
        cursor=cursor,
    )
    try:
        summary = pipeline.run(max_docs=args.max_docs)
    finally:
        service.close()
    skipped = f", {summary.skipped} already present" if summary.skipped else ""
    print(
        f"ingested {summary.docs} documents ({summary.elements} elements, "
        f"{summary.links} links, {summary.dropped_links} dropped) in "
        f"{summary.batches} batches over {summary.seconds:.2f}s "
        f"({summary.docs_per_second:.0f} docs/s{skipped})"
    )
    print(
        f"freshness lag p50 {summary.freshness_p50_ms:.2f} ms, "
        f"p99 {summary.freshness_p99_ms:.2f} ms; epoch {summary.epoch}, "
        f"frontier at document {summary.cursor}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HOPI: 2-hop connection index for linked XML collections",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="index XML files into a database")
    p.add_argument("inputs", nargs="+", help="XML files or directories")
    p.add_argument("-o", "--output", required=True, help="index database path")
    p.add_argument("--strategy", default="recursive",
                   choices=["unpartitioned", "incremental", "recursive"])
    p.add_argument("--partitioner", default="closure",
                   choices=["node_weight", "node-weight", "closure",
                            "closure-size", "single"],
                   help="document partitioner: node-weight (Section 3.3 "
                        "element-count budget) or closure-size (Section "
                        "4.3 closure-connection budget); 'single' puts "
                        "every document in its own partition")
    p.add_argument("--partition-limit", type=int, default=None)
    p.add_argument("--edge-weight", default="links",
                   choices=["links", "AxD", "A+D"])
    p.add_argument("--distance", action="store_true",
                   help="build a distance-aware cover (Section 5)")
    p.add_argument("--backend", default="sets",
                   choices=list(BACKENDS),
                   help="label backend: dict-of-sets, interned dense ids "
                        "with sorted arrays, or sealed CSR slabs with "
                        "batch probe kernels (identical answers)")
    p.add_argument("--workers", default=None,
                   help="worker-pool size (build partition covers and "
                        "join shards concurrently; Section 4's parallel "
                        "divide-and-conquer), or a host:port[,host:port"
                        "...] list of `repro build-worker` daemons for "
                        "--executor rpc; covers are bit-identical to a "
                        "serial build either way")
    p.add_argument("--executor", default=None,
                   choices=["serial", "process", "threads", "rpc"],
                   help="build executor (default: process when --workers "
                        "is a count > 1, rpc when it is an address list, "
                        "else serial)")
    p.add_argument("--join-shards", type=int, default=None,
                   help="shard the recursive join's distribution step "
                        "(default: the worker count; 1 = serial join)")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser(
        "build-worker",
        help="run an RPC build worker daemon for `repro build "
             "--executor rpc` (the paper's 'different machines' build)",
    )
    p.add_argument("--listen", default="127.0.0.1:9123",
                   help="HOST:PORT to listen on (port 0 picks an "
                        "ephemeral port; default 127.0.0.1:9123). Bind "
                        "to loopback or a private build network only — "
                        "workers execute tasks from anyone who connects")
    p.set_defaults(func=cmd_build_worker)

    p = sub.add_parser("generate", help="write a synthetic XML collection")
    p.add_argument("family", choices=["dblp", "inex"])
    p.add_argument("-n", "--num-docs", type=int, default=100)
    p.add_argument("-o", "--output", required=True, help="output directory")
    p.add_argument("--seed", type=int, default=42)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("query", help="evaluate a //-path expression")
    p.add_argument("index")
    p.add_argument("path",
                   help='e.g. "//article//author", "//~book//author", or '
                        '"//article[keywords]//cite limit 10 offset 20"')
    p.add_argument("--limit", type=int, default=None,
                   help="cap the ranked results printed (default: the "
                        "expression's own 'limit N', else 20)")
    p.add_argument("--offset", type=int, default=None,
                   help="skip the first N ranked results (default: the "
                        "expression's own 'offset N', else 0)")
    p.add_argument("--explain", action="store_true",
                   help="print the physical plan (estimates, join order, "
                        "probe directions) instead of evaluating")
    p.add_argument("--planner", default="selective",
                   choices=["selective", "naive"],
                   help="join-ordering mode: selectivity-driven (may flip "
                        "descendant joins to backward ancestors-side "
                        "probes) or the naive left-to-right order; "
                        "answers are identical")
    p.add_argument("--max-results", type=int, default=1000,
                   help="engine-level ranked-result truncation (the "
                        "serving tier's knob, now settable here too)")
    p.add_argument("--similarity-threshold", type=float, default=0.3,
                   help="minimum ontology similarity for a ~tag step to "
                        "include a tag (the serving tier's knob, now "
                        "settable here too)")
    p.add_argument("--backend", default=None,
                   choices=list(BACKENDS),
                   help="label backend to load the cover into; 'arrays' "
                        "uses the batched descendant-step hot path and "
                        "'vector' adds sealed-slab batch kernels "
                        "(default: the backend the index was built with)")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("connected", help="reachability test between elements")
    p.add_argument("index")
    p.add_argument("source", type=int)
    p.add_argument("target", type=int)
    p.add_argument("--distance", action="store_true")
    p.set_defaults(func=cmd_connected)

    p = sub.add_parser("stats", help="index size statistics")
    p.add_argument("index")
    p.add_argument("--closure", action="store_true",
                   help="also materialise the closure for the compression ratio")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="serve a persisted index over HTTP — the versioned /v1 "
             "API (query count explain connected distance update "
             "stats healthz metrics) plus deprecated un-versioned "
             "aliases; --shards N serves sharded behind a "
             "scatter-gather router; --async serves on the asyncio "
             "front end with admission control",
    )
    p.add_argument("index")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="listening port (0 picks an ephemeral port)")
    p.add_argument("--backend", default=None,
                   choices=list(BACKENDS),
                   help="label backend to serve from (default: as built; "
                        "'arrays' is the fast descendant-step path, "
                        "'vector' its batch-kernel raw-speed variant)")
    p.add_argument("--shards", type=int, default=None,
                   help="serve sharded: partition documents over N "
                        "shards behind a scatter-gather router "
                        "(answers bit-identical to unsharded serving)")
    p.add_argument("--shard-workers", default=None,
                   help="host:port[,host:port...] of `repro build-worker` "
                        "daemons to host the shards (shard i lives on "
                        "worker i %% len(workers)); default: all shards "
                        "in-process")
    p.add_argument("--max-results", type=int, default=1000)
    p.add_argument("--similarity-threshold", type=float, default=0.3,
                   help="minimum ontology similarity for ~tag steps")
    p.add_argument("--result-cache", type=int, default=4096,
                   help="entries in the (path, epoch) result LRU")
    p.add_argument("--probe-cache", type=int, default=8192,
                   help="per-epoch descendant-probe LRU entries")
    p.add_argument("--max-requests", type=int, default=None,
                   help="exit after accepting N connections (smoke tests/CI)")
    p.add_argument("--store", default=None, metavar="DIR",
                   help="durable store directory (index.db + updates.wal): "
                        "update batches are WAL-logged before publishing "
                        "and the server recovers the latest epoch after a "
                        "crash; an empty DIR is seeded from the index "
                        "argument, a populated one takes precedence over it")
    p.add_argument("--checkpoint-interval", type=int, default=64,
                   help="WAL records between snapshot checkpoints of the "
                        "durable store (default 64)")
    p.add_argument("--async", dest="use_async", action="store_true",
                   help="serve on the asyncio front end: bounded worker "
                        "pool + admission control — overload answers a "
                        "structured 429 instead of queueing unboundedly")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="async front end: worker threads evaluating "
                        "requests concurrently (default 8)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="async front end: admitted requests allowed to "
                        "wait for a worker slot before new arrivals are "
                        "shed with 429 (default 64)")
    p.add_argument("--max-client-share", type=float, default=0.5,
                   help="async front end: fraction of the admission "
                        "window one client key (X-Client-Id or peer "
                        "address) may occupy before its requests are "
                        "shed (default 0.5)")
    p.add_argument("--verbose", action="store_true",
                   help="log one line per request")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("delete-doc", help="incrementally delete a document")
    p.add_argument("index")
    p.add_argument("doc_id")
    p.set_defaults(func=cmd_delete_doc)

    p = sub.add_parser("verify", help="audit the cover against a BFS oracle")
    p.add_argument("index")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "ingest",
        help="stream documents from a source into a durable index — "
             "crawl-style frontier -> insert_document ops -> group-"
             "commit publishes, WAL-logged; crash-resumable with "
             "--resume (the frontier checkpoint rides in the store "
             "directory)",
    )
    p.add_argument("--source", required=True, metavar="SPEC",
                   help="document stream: dir:PATH walks *.xml files; "
                        "scale-free:N, deep-tree:N and ontology:N are "
                        "seeded synthetic generators")
    p.add_argument("--store", required=True, metavar="DIR",
                   help="durable store directory (index.db + updates.wal "
                        "+ frontier.json); created on first run")
    p.add_argument("--resume", action="store_true",
                   help="continue a previous ingest of the same source "
                        "from its frontier checkpoint (required when "
                        "DIR already holds an index)")
    p.add_argument("--seed", type=int, default=2005,
                   help="seed for synthetic sources (default 2005); a "
                        "resume must pass the original seed")
    p.add_argument("--backend", default=None, choices=list(BACKENDS),
                   help="label backend for a fresh store (default arrays)")
    p.add_argument("--batch-docs", type=int, default=8,
                   help="documents per group-commit batch (default 8): "
                        "bigger amortises publishes, smaller cuts "
                        "freshness lag")
    p.add_argument("--max-docs", type=int, default=None,
                   help="stop after ingesting N new documents")
    p.add_argument("--checkpoint-interval", type=int, default=64,
                   help="WAL records between snapshot checkpoints of the "
                        "durable store (default 64)")
    p.set_defaults(func=cmd_ingest)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
