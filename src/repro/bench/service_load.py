"""Load generator for the serving tier (``BENCH_service.json``).

Drives :class:`repro.service.QueryService` the way a search front end
would — many concurrent clients with overlapping working sets — and
records the serving-tier trajectory:

* **cold vs cached**: per-query latency of first evaluation vs repeat
  (the result cache's whole point);
* **closed loop**: every client thread issues requests back-to-back
  from a shared descendant-step query mix; throughput and p50/p95/p99
  latency at 1/4/16 threads plus cache hit rate. Because overlapping
  clients share the ``(path, epoch)`` result cache and in-flight
  coalescing, aggregate throughput scales with client count even under
  the GIL — cache hits cost microseconds and never serialise on the
  evaluator;
* **open loop**: requests arrive on a fixed schedule regardless of
  completions; latency is measured from the *scheduled* arrival, so
  queueing delay is charged to the service (the metric an SLA cares
  about);
* **hot swap under load**: ``/update`` batches hot-swap the index while
  sustained querying runs; the run fails any request error and any
  torn answer (two different result sets observed for one
  ``(path, epoch)``);
* **async front end** (end-to-end HTTP): a ``tail`` segment — 16
  closed-loop clients on an all-cold-miss mix against the asyncio
  front end, gated on p99 ≤ 100x p50 — and an ``overload`` segment —
  an open-loop burst beyond capacity whose excess arrivals must come
  back as structured 429s (zero hangs, zero unstructured errors), with
  the ``/v1/metrics`` shed counters recorded alongside.
"""

from __future__ import annotations

import math
import os
import sys
import tempfile
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.trajectory import anchored_trajectory_path, append_trajectory
from repro.bench.workloads import bench_dblp, workload_scale, workload_seed
from repro.core.hopi import BACKENDS, HopiIndex
from repro.core.ops import apply_update_op
from repro.query.engine import QueryEngine
from repro.service.service import QueryService
from repro.xmlmodel.generator import dblp_like
from repro.xmlmodel.model import Collection


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending sequence (0 < f <= 1)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, int(fraction * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def service_query_mix(collection: Collection, *, max_paths: int = 8) -> List[str]:
    """A descendant-step query mix over the collection's frequent tags.

    Pairs the root tags (documents' entry points) with the most frequent
    element tags — the ``//a//b`` shape whose descendant step is the
    engine's hot path. Only paths with at least one match survive, so
    the mix measures real evaluation work.
    """
    tag_index = collection.tags()
    root_tags = sorted(
        {collection.elements[d.root].tag for d in collection.documents.values()}
    )
    frequent = [
        tag for tag, _ in sorted(
            tag_index.items(), key=lambda kv: (-len(kv[1]), kv[0])
        )
    ]
    paths = []
    for root_tag in root_tags:
        for tag in frequent:
            if tag != root_tag:
                paths.append(f"//{root_tag}//{tag}")
    return paths[:max_paths]


@dataclass
class LoadRow:
    """One closed- or open-loop measurement.

    ``throughput_rps`` is always the *measured* completion rate; in open
    loop the configured arrival rate is reported separately as
    ``offered_rps`` so saturation (measured < offered) is visible in the
    trajectory instead of silently misrecorded.
    """

    mode: str
    threads: int
    requests: int
    errors: int
    seconds: float
    throughput_rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    hit_rate: Optional[float] = None
    offered_rps: Optional[float] = None


def _run_clients(
    n_threads: int,
    worker,
) -> Tuple[List[float], List[BaseException], float]:
    """Start ``n_threads`` running ``worker(thread_idx, latencies, errors)``
    behind a barrier; returns merged latencies, errors, wall seconds."""
    latencies: List[List[float]] = [[] for _ in range(n_threads)]
    errors: List[BaseException] = []
    errors_lock = threading.Lock()
    barrier = threading.Barrier(n_threads + 1)

    def run(idx: int) -> None:
        barrier.wait()
        try:
            worker(idx, latencies[idx])
        except BaseException as exc:  # noqa: BLE001 - recorded, not dropped
            with errors_lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(i,), daemon=True)
        for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    merged = [x for sub in latencies for x in sub]
    return merged, errors, wall


def run_closed_loop(
    service: QueryService,
    paths: Sequence[str],
    *,
    threads: int,
    requests_per_thread: int,
) -> LoadRow:
    """Closed loop: each thread issues ``requests_per_thread`` queries
    back-to-back, round-robin over the shared mix (all threads walk the
    same sequence — overlapping working sets, the serving-tier case)."""
    hits0 = service.stats()["result_cache"]

    def worker(idx: int, lat: List[float]) -> None:
        for i in range(requests_per_thread):
            t0 = time.perf_counter()
            service.query(paths[i % len(paths)])
            lat.append(time.perf_counter() - t0)

    merged, errors, wall = _run_clients(threads, worker)
    hits1 = service.stats()["result_cache"]
    lookups = (hits1["hits"] - hits0["hits"]) + (hits1["misses"] - hits0["misses"])
    merged.sort()
    return LoadRow(
        mode="closed",
        threads=threads,
        requests=len(merged),
        errors=len(errors),
        seconds=wall,
        throughput_rps=len(merged) / wall if wall > 0 else 0.0,
        p50_ms=percentile(merged, 0.50) * 1e3,
        p95_ms=percentile(merged, 0.95) * 1e3,
        p99_ms=percentile(merged, 0.99) * 1e3,
        hit_rate=(hits1["hits"] - hits0["hits"]) / lookups if lookups else None,
    )


def run_open_loop(
    service: QueryService,
    paths: Sequence[str],
    *,
    threads: int = 8,
    rate_rps: float = 2000.0,
    total_requests: int = 1000,
) -> LoadRow:
    """Open loop: arrivals on a fixed schedule, latency charged from the
    scheduled arrival time (queueing delay included)."""
    next_idx = [0]
    idx_lock = threading.Lock()
    start_at = time.perf_counter() + 0.05  # let all workers reach the loop

    def worker(idx: int, lat: List[float]) -> None:
        while True:
            with idx_lock:
                i = next_idx[0]
                if i >= total_requests:
                    return
                next_idx[0] += 1
            scheduled = start_at + i / rate_rps
            now = time.perf_counter()
            if scheduled > now:
                time.sleep(scheduled - now)
            service.query(paths[i % len(paths)])
            lat.append(time.perf_counter() - scheduled)

    merged, errors, wall = _run_clients(threads, worker)
    merged.sort()
    return LoadRow(
        mode="open",
        threads=threads,
        requests=len(merged),
        errors=len(errors),
        seconds=wall,
        throughput_rps=len(merged) / wall if wall > 0 else 0.0,
        p50_ms=percentile(merged, 0.50) * 1e3,
        p95_ms=percentile(merged, 0.95) * 1e3,
        p99_ms=percentile(merged, 0.99) * 1e3,
        offered_rps=rate_rps,
    )


def run_cold_vs_cached(
    index: HopiIndex, paths: Sequence[str], **service_kwargs
) -> Dict[str, float]:
    """First-evaluation vs repeat latency on a fresh service."""
    service = QueryService(index.copy(), **service_kwargs)
    cold = 0.0
    cached = 0.0
    for path in paths:
        t0 = time.perf_counter()
        response = service.query(path)
        cold += time.perf_counter() - t0
        assert response.source == "computed"
        t0 = time.perf_counter()
        response = service.query(path)
        cached += time.perf_counter() - t0
        assert response.source == "hit"
    n = len(paths)
    return {
        "cold_ms_per_query": cold / n * 1e3,
        "cached_ms_per_query": cached / n * 1e3,
        "speedup": cold / cached if cached > 0 else float("inf"),
    }


@dataclass
class HotSwapResult:
    """Outcome of the update-under-sustained-load segment."""

    updates: int
    requests: int
    errors: int
    torn: int
    epochs_observed: List[int] = field(default_factory=list)
    update_seconds_avg: float = 0.0


def run_hot_swap_under_load(
    service: QueryService,
    paths: Sequence[str],
    *,
    threads: int = 4,
    requests_per_thread: int = 400,
    updates: int = 5,
) -> HotSwapResult:
    """Hot-swap ``updates`` maintenance batches while ``threads`` readers
    query at full speed.

    Overlap is guaranteed by construction: the writer waits for the
    first reader request before its first update, every update batch is
    applied (never cancelled), and readers issue at least
    ``requests_per_thread`` requests each *and* keep querying until the
    last batch has swapped in — so every swap lands under live traffic.

    Failure conditions counted (both must be zero for acceptance):
    * any reader request raising;
    * a *torn* answer — a result set that differs from an **independent
      per-epoch oracle** (the update sequence replayed offline, each
      epoch evaluated with a plain engine). Comparing against the
      oracle, not just across readers, keeps the check meaningful even
      though same-epoch readers share one cached result list.
    """
    # ---- the deterministic update sequence, shared with the writer
    roots = sorted(d.root for d in service.index.collection.documents.values())
    base_epoch = service.epoch

    def batch_for(i: int) -> List[Dict[str, object]]:
        return [{"op": "insert_element", "parent": roots[i % len(roots)],
                 "tag": "benchnote"}]

    def sig_of(results) -> Tuple:
        return tuple((r.target, round(r.score, 12)) for r in results)

    # ---- per-epoch oracles via offline replay (no service caches)
    oracle: Dict[int, Dict[str, Tuple]] = {}
    replica = service.index.copy()
    for i in range(updates + 1):
        if i > 0:
            op = batch_for(i - 1)[0]
            replica.insert_element(op["parent"], op["tag"])
        engine = QueryEngine(replica, max_results=service.max_results)
        oracle[base_epoch + i] = {p: sig_of(engine.evaluate(p)) for p in paths}

    observed: Dict[Tuple[str, int], set] = {}
    observed_lock = threading.Lock()
    readers_started = threading.Event()
    writer_done = threading.Event()

    def worker(idx: int, lat: List[float]) -> None:
        i = 0
        # run the minimum, then finish full cycles until the writer is
        # done (safety-capped so a stuck writer cannot hang the bench)
        while (
            i < requests_per_thread
            or not writer_done.is_set()
            or i % len(paths) != 0
        ):
            path = paths[i % len(paths)]
            i += 1
            t0 = time.perf_counter()
            response = service.query(path)
            lat.append(time.perf_counter() - t0)
            readers_started.set()
            with observed_lock:
                observed.setdefault((path, response.epoch), set()).add(
                    sig_of(response.results)
                )
            if i >= requests_per_thread * 50:  # pragma: no cover - safety net
                break

    update_seconds: List[float] = []

    def writer() -> None:
        readers_started.wait(timeout=30)
        try:
            for i in range(updates):
                t0 = time.perf_counter()
                service.update(batch_for(i))
                update_seconds.append(time.perf_counter() - t0)
                time.sleep(0.005)
        finally:
            writer_done.set()

    writer_thread = threading.Thread(target=writer, daemon=True)
    writer_thread.start()
    merged, errors, _ = _run_clients(threads, worker)
    writer_thread.join()

    # torn = any observed answer diverging from its epoch's oracle (or a
    # same-key disagreement, which the shared cache makes near-impossible
    # but costs nothing to keep checking)
    torn = 0
    for (path, epoch), sigs in observed.items():
        expected = oracle.get(epoch, {}).get(path)
        if expected is None or sigs != {expected}:
            torn += 1
    return HotSwapResult(
        updates=len(update_seconds),
        requests=len(merged),
        errors=len(errors),
        torn=torn,
        epochs_observed=sorted({epoch for (_, epoch) in observed}),
        update_seconds_avg=(
            sum(update_seconds) / len(update_seconds) if update_seconds else 0.0
        ),
    )


def run_sharded_benchmark(
    collection: Optional[Collection] = None,
    *,
    backend: str = "arrays",
    shard_counts: Sequence[int] = (1, 2, 4),
    index: Optional[HopiIndex] = None,
) -> Dict[str, object]:
    """The horizontally-sharded serving segment of ``BENCH_service.json``.

    Three legs, mirroring the router's three claims:

    * **scatter-gather throughput** at 1/2/4 shards on the cross-shard
      query mix. Per-shard cold evaluation times are measured directly
      against each shard client; closed-loop throughput is then
      *modeled* as LPT bottleneck scheduling — ``|Q| / max_s Σ_q
      t_s(q)`` — because single-CPU hosts cannot demonstrate real
      parallel speedup (``speedup_source`` labels this). Router-level
      answers are asserted bit-identical to a single-process
      :class:`QueryService` at every shard count;
    * **rolling hot swap**: the per-epoch-oracle harness
      (:func:`run_hot_swap_under_load`) against the router — zero
      failed and zero torn requests while generations swap in
      shard-by-shard;
    * **kill one shard**: an RPC router over two loopback workers, one
      worker killed mid-run — every subsequent scatter must fail *fast*
      with a structured :class:`ShardUnavailableError` (degraded mode),
      never hang.
    """
    from repro.service.shard import ShardRouter, ShardUnavailableError

    collection = collection or bench_dblp()
    if index is None:
        index = HopiIndex.build(collection, backend=backend)
    paths = service_query_mix(collection)

    def signature(response) -> Tuple:
        return (
            tuple((r.score, tuple(r.bindings)) for r in response.results),
            response.total, response.truncated, response.epoch,
        )

    single = QueryService(index.copy())

    rows: List[Dict[str, object]] = []
    modeled_rps: Dict[int, float] = {}
    for n_shards in shard_counts:
        with ShardRouter(index.copy(), n_shards) as router:
            generation = router._state.generation
            # per-shard cold evaluation seconds, measured before any
            # router-level call warms the shard-side result caches
            per_shard: List[List[float]] = []
            for shard in range(n_shards):
                client = router._clients[shard]
                times = []
                for path in paths:
                    t0 = time.perf_counter()
                    client.request({
                        "op": "query", "generation": generation,
                        "path": path, "prefix": router.max_results,
                    })
                    times.append(time.perf_counter() - t0)
                per_shard.append(times)
            # LPT bottleneck model: with one shard per core, wall time
            # for the whole mix is the busiest shard's total
            bottleneck = max(sum(times) for times in per_shard)
            modeled = len(paths) / bottleneck if bottleneck > 0 else 0.0
            modeled_rps[n_shards] = modeled
            # modeled per-request latency = slowest shard's answer
            latencies = sorted(
                max(per_shard[s][q] for s in range(n_shards))
                for q in range(len(paths))
            )
            parity_ok = all(
                signature(single.query(path, **kwargs))
                == signature(router.query(path, **kwargs))
                for path in paths
                for kwargs in ({}, {"limit": 5, "offset": 2})
            )
            balance = [sum(times) for times in per_shard]
            rows.append({
                "shards": n_shards,
                "modeled_rps": modeled,
                "p50_ms": percentile(latencies, 0.50) * 1e3,
                "p99_ms": percentile(latencies, 0.99) * 1e3,
                "busiest_share": max(balance) / sum(balance) if sum(balance) else 0.0,
                "parity_ok": parity_ok,
            })

    first = shard_counts[0]
    last = shard_counts[-1]
    speedup = (
        modeled_rps[last] / modeled_rps[first]
        if modeled_rps.get(first) else None
    )

    # ---- rolling hot swap: per-epoch oracle against the router ---------
    with ShardRouter(index.copy(), max(shard_counts)) as swap_router:
        swap = run_hot_swap_under_load(
            swap_router, paths, threads=4, requests_per_thread=100, updates=3
        )

    # ---- kill one shard: degraded, structured, fast --------------------
    from repro.core.rpc import start_worker_thread

    s1, a1 = start_worker_thread()
    s2, a2 = start_worker_thread()
    kill_router = ShardRouter(
        index.copy(), 2, workers=[a1, a2],
        fanout_timeout=10.0, connect_attempts=1,
    )
    degraded = 0
    hung = 0
    max_seconds = 0.0
    try:
        kill_router.query(paths[0])  # healthy baseline
        s2.shutdown()
        s2.server_close()
        kill_router._clients[1].close()  # sever pooled connections too
        probes = paths[1:5] or paths[:1]
        for path in probes:
            t0 = time.perf_counter()
            try:
                kill_router.query(path, limit=7)  # uncached -> scatters
            except ShardUnavailableError:
                degraded += 1
            elapsed = time.perf_counter() - t0
            max_seconds = max(max_seconds, elapsed)
            if elapsed > kill_router._fanout_timeout + 5.0:
                hung += 1
        health_status = kill_router.healthz()["status"]
    finally:
        kill_router.close()
        s1.shutdown()
        s1.server_close()

    return {
        "speedup_source": "modeled-lpt-single-cpu",
        "query_mix": list(paths),
        "rows": rows,
        "speedup_4v1": speedup,
        "rolling_swap": asdict(swap),
        "kill_one_shard": {
            "requests": len(probes),
            "degraded": degraded,
            "hung": hung,
            "max_seconds": max_seconds,
            "healthz_status": health_status,
        },
    }


def run_async_front_end_benchmark(
    index: HopiIndex,
    *,
    tail_clients: int = 16,
    tail_requests_per_client: int = 8,
    overload_rate: float = 300.0,
    overload_duration: float = 1.0,
) -> Dict[str, object]:
    """The asyncio front end under tail and overload workloads.

    Measured end to end over real HTTP (socket to socket), unlike the
    in-process rows — this is the segment the ROADMAP tail gate reads:

    * **tail**: ``tail_clients`` closed-loop clients over an
      all-cold-miss mix (every request a distinct plan, so p50 and p99
      measure the same code path); the gate is p99 within 100x of p50.
    * **overload**: an open-loop burst far beyond capacity against a
      deliberately small admission window; the contract is zero hangs
      and zero unstructured errors — excess arrivals become structured
      429s, visible as ``shed`` — plus the ``/v1/metrics`` counters
      recorded right after the burst.
    """
    from repro.bench.faults import (
        closed_loop_clients,
        cold_miss_paths,
        open_loop_burst,
    )
    from repro.service.asyncio_http import start_in_thread

    def quoted(paths: List[str]) -> List[str]:
        return [
            "/v1/query?path=" + p.replace("[", "%5B").replace("]", "%5D")
            for p in paths
        ]

    # -- tail: 16 closed-loop clients, all cold misses ------------------
    tail_service = QueryService(index.copy())
    n_paths = min(500, tail_clients * tail_requests_per_client)
    tail_paths = quoted(cold_miss_paths(n_paths, seed=11))
    with start_in_thread(tail_service, max_inflight=8) as handle:
        host, port = handle.address
        outcomes = closed_loop_clients(
            host, port, tail_paths,
            n_clients=tail_clients,
            requests_per_client=tail_requests_per_client,
        )
    latencies = sorted(
        o.elapsed for o in outcomes if o.status == 200
    )
    errors = sum(1 for o in outcomes if o.status != 200)
    p50 = percentile(latencies, 0.50)
    p99 = percentile(latencies, 0.99)
    tail = {
        "clients": tail_clients,
        "requests": len(outcomes),
        "errors": errors,
        "p50_ms": p50 * 1e3,
        "p95_ms": percentile(latencies, 0.95) * 1e3,
        "p99_ms": p99 * 1e3,
        "ratio_p99_p50": (p99 / p50) if p50 > 0 else None,
    }

    # -- overload: open-loop burst into a small admission window --------
    overload_service = QueryService(index.copy())
    burst_paths = quoted(cold_miss_paths(64, seed=5))
    with start_in_thread(
        overload_service, max_inflight=2, queue_depth=4
    ) as handle:
        host, port = handle.address
        report = open_loop_burst(
            host, port, burst_paths,
            rate=overload_rate, duration=overload_duration, timeout=30.0,
        )
        import json as _json
        import urllib.request as _request

        with _request.urlopen(
            handle.base_url + "/v1/metrics", timeout=10
        ) as resp:
            metrics = _json.loads(resp.read())
    overload = report.summary()
    overload.update(
        offered_rps=overload_rate,
        duration_s=overload_duration,
        max_inflight=2,
        queue_depth=4,
        metrics_shed=metrics["shed"],
        metrics_gauges=metrics["gauges"],
    )
    return {"tail": tail, "overload": overload}


# --------------------------------------------------------------------------
# write path: COW publish latency, group commit, updates under readers
# --------------------------------------------------------------------------


def _single_op(index: HopiIndex, tag: str) -> List[Dict[str, object]]:
    """One ``insert_element`` batch at the first document root."""
    docs = sorted(index.collection.documents)
    root = index.collection.documents[docs[0]].root
    return [{"op": "insert_element", "parent": root, "tag": tag}]


def _legacy_deep_copy_update(
    service: QueryService, ops: Sequence[Dict[str, object]]
) -> None:
    """The pre-COW write path: fork the shadow with a full deep copy.

    Kept only as the benchmark baseline — same lock, same publish
    machinery as :meth:`QueryService.update`, only the fork differs.
    """
    with service._write_lock:
        current = service._holder.current
        shadow = current.index.copy()
        for op in ops:
            apply_update_op(shadow, op)
        if shadow.epoch <= current.epoch:
            shadow.epoch = current.epoch + 1
        service._publish(shadow)


def run_publish_latency_sweep(
    *,
    backend: str = "arrays",
    size_docs: Sequence[int] = (8, 32, 128),
    repetitions: int = 5,
) -> Dict[str, object]:
    """Publish latency of a single-op epoch vs collection size.

    For each size the same ``insert_element`` batch is published through
    the COW write path (``cow_copy`` shadow) and through the legacy
    deep-copy path; the best-of-``repetitions`` wall time is recorded
    (best-of, not mean — the quantity of interest is the cost floor of
    the fork, not scheduler noise).

    The **sublinearity gate**: fit ``latency ~ elements**k`` between the
    smallest and largest size. The deep-copy path must re-materialise
    the whole index per update (k near 1), while the COW path copies
    outer containers only and privatises the handful of dirty rows —
    its exponent must stay below 1.
    """
    scale = workload_scale()
    rows: List[Dict[str, object]] = []
    for base_docs in size_docs:
        docs = max(int(base_docs * scale), 4)
        collection = dblp_like(docs, seed=2005)
        index = HopiIndex.build(
            collection,
            strategy="recursive",
            partitioner="node_weight",
            partition_limit=max(collection.num_elements // 16, 1),
            backend=backend,
        )

        cow_service = QueryService(index.copy())
        cow_times: List[float] = []
        for rep in range(repetitions):
            ops = _single_op(cow_service.index, f"cow{rep}")
            t0 = time.perf_counter()
            cow_service.update(ops)
            cow_times.append(time.perf_counter() - t0)

        deep_service = QueryService(index.copy())
        deep_times: List[float] = []
        for rep in range(repetitions):
            ops = _single_op(deep_service.index, f"deep{rep}")
            t0 = time.perf_counter()
            _legacy_deep_copy_update(deep_service, ops)
            deep_times.append(time.perf_counter() - t0)

        cow_best, deep_best = min(cow_times), min(deep_times)
        rows.append(
            {
                "documents": docs,
                "elements": collection.num_elements,
                "cow_publish_seconds": cow_best,
                "deep_publish_seconds": deep_best,
                "deep_over_cow": (deep_best / cow_best) if cow_best > 0 else None,
            }
        )

    def exponent(key: str) -> Optional[float]:
        first, last = rows[0], rows[-1]
        growth = last["elements"] / first["elements"]
        if growth <= 1 or not first[key] or not last[key]:
            return None
        return math.log(last[key] / first[key]) / math.log(growth)

    cow_exp = exponent("cow_publish_seconds")
    deep_exp = exponent("deep_publish_seconds")
    return {
        "sizes": rows,
        "cow_scaling_exponent": cow_exp,
        "deep_scaling_exponent": deep_exp,
        # the acceptance gate: COW publish latency sublinear in size
        "cow_sublinear": (cow_exp is not None and cow_exp < 1.0),
    }


def run_group_commit_sweep(
    index: HopiIndex,
    *,
    caller_counts: Sequence[int] = (1, 4, 16),
    updates_each: int = 6,
) -> List[Dict[str, object]]:
    """Concurrent update callers vs publishes: the group-commit factor.

    ``callers`` threads each submit ``updates_each`` single-op batches
    back-to-back. While one caller's drain holds the write lock, the
    others queue; the drainer folds everything queued into one shadow
    and publishes once, so under contention ``updates / publishes``
    climbs above 1 — that ratio and the wall throughput are what the
    sweep records. The GIL switch interval is shrunk for the sweep so
    commits actually get preempted (with the default 5 ms slice a
    sub-millisecond commit finishes unchallenged and every batch
    publishes solo, hiding the behaviour under test).
    """
    rows: List[Dict[str, object]] = []
    for callers in caller_counts:
        service = QueryService(index.copy())
        swaps_before = service._holder.swaps

        def submit(slot: int, lat: List[float]) -> None:
            for i in range(updates_each):
                ops = _single_op(service.index, f"gc-c{slot}-u{i}")
                t0 = time.perf_counter()
                service.update(ops)
                lat.append(time.perf_counter() - t0)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(0.0005)
        try:
            merged, errors, wall = _run_clients(callers, submit)
        finally:
            sys.setswitchinterval(old_interval)

        publishes = service._holder.swaps - swaps_before
        updates = callers * updates_each
        ordered = sorted(merged)
        rows.append(
            {
                "callers": callers,
                "updates": updates,
                "errors": len(errors),
                "publishes": publishes,
                "updates_per_publish": (
                    updates / publishes if publishes else None
                ),
                "updates_per_second": (updates / wall) if wall > 0 else None,
                "commit_p95_ms": (
                    percentile(ordered, 0.95) * 1000.0 if ordered else None
                ),
            }
        )
    return rows


def run_updates_under_readers(
    index: HopiIndex,
    paths: Sequence[str],
    *,
    reader_threads: int = 4,
    updates: int = 30,
) -> Dict[str, object]:
    """Sustained single-op update throughput with readers at full speed.

    Unlike :func:`run_hot_swap_under_load` (which paces its writer to
    maximise swap/read overlap for the torn-read check), the writer
    here publishes back-to-back: the figure of merit is updates/sec
    while ``reader_threads`` keep querying, plus the reader throughput
    they retain under that write pressure.
    """
    service = QueryService(index.copy())
    readers_started = threading.Event()
    writer_done = threading.Event()
    write_wall = [0.0]

    def reader(idx: int, lat: List[float]) -> None:
        i = 0
        while not writer_done.is_set() or i < len(paths):
            path = paths[i % len(paths)]
            i += 1
            t0 = time.perf_counter()
            service.query(path)
            lat.append(time.perf_counter() - t0)
            readers_started.set()
            if i >= updates * 200:  # pragma: no cover - safety net
                break

    def writer() -> None:
        readers_started.wait(timeout=30)
        t0 = time.perf_counter()
        try:
            for i in range(updates):
                service.update(_single_op(service.index, f"wnote{i}"))
        finally:
            write_wall[0] = time.perf_counter() - t0
            writer_done.set()

    writer_thread = threading.Thread(target=writer, daemon=True)
    writer_thread.start()
    merged, errors, wall = _run_clients(reader_threads, reader)
    writer_thread.join()

    ordered = sorted(merged)
    return {
        "updates": updates,
        "updates_per_second": (
            updates / write_wall[0] if write_wall[0] > 0 else None
        ),
        "reader_threads": reader_threads,
        "reader_requests": len(merged),
        "reader_errors": len(errors),
        "reader_throughput_rps": (len(merged) / wall) if wall > 0 else None,
        "reader_p95_ms": (
            percentile(ordered, 0.95) * 1000.0 if ordered else None
        ),
    }


def run_write_path_benchmark(
    index: HopiIndex,
    paths: Sequence[str],
    *,
    backend: str = "arrays",
    updates: int = 30,
) -> Dict[str, object]:
    """The write-heavy segment of the serving benchmark.

    Three sub-studies: sustained updates/sec under concurrent readers,
    single-op publish latency vs collection size for the COW vs the
    legacy deep-copy shadow (with the sublinearity gate), and the
    group-commit batch-size sweep.
    """
    scaled_updates = max(int(updates * workload_scale()), 5)
    return {
        "updates_under_readers": run_updates_under_readers(
            index, paths, updates=scaled_updates
        ),
        "publish_latency": run_publish_latency_sweep(backend=backend),
        "group_commit": run_group_commit_sweep(index),
    }


class _SimulatedCrash(RuntimeError):
    """Raised by the crash hook to abandon an ingest mid-publish."""


INGEST_QUERY_MIX = ("//article//cite", "//article//author", "//title")


def run_ingestion_benchmark(
    *,
    backend: str = "arrays",
    n_docs: int = 120,
    batch_docs: int = 8,
    reader_threads: int = 4,
    crash_after_batches: int = 4,
) -> Dict[str, object]:
    """The ingestion segment of the serving benchmark.

    Three sub-studies on the streaming pipeline (:mod:`repro.ingest`):

    * **throughput**: sustained docs/sec streaming a scale-free
      citation graph through group-commit publishes while
      ``reader_threads`` query at full speed, with the per-document
      freshness lag (discovery -> queryable) p50/p99;
    * **crash_resume**: an ingest into a durable store is killed via
      the crash hook after ``crash_after_batches`` publishes (WAL ahead
      of the frontier — the worst crash window), recovered and resumed;
      the recovered index must be **bit-identical** (canonical snapshot
      bytes) to an uninterrupted run;
    * **differential**: the streamed index must answer the query mix
      identically to a batch-built index over the same final
      collection, on every label backend.
    """
    from repro.ingest import (
        FrontierCheckpoint,
        IngestPipeline,
        collection_from_source,
        make_source,
    )
    from repro.storage.snapshot import canonical_snapshot_bytes
    from repro.storage.wal import DurableIndexStore

    seed = workload_seed()
    n_docs = max(int(n_docs * workload_scale()), 30)
    spec = f"scale-free:{n_docs}"
    paths = list(INGEST_QUERY_MIX)

    # -- throughput under concurrent readers ----------------------------
    service = QueryService(HopiIndex.build(Collection(), backend=backend))
    done = threading.Event()
    reader_latencies: List[List[float]] = [[] for _ in range(reader_threads)]
    reader_errors: List[BaseException] = []

    def reader(latencies: List[float]) -> None:
        while not done.is_set():
            for path in paths:
                t0 = time.perf_counter()
                try:
                    service.query(path)
                except Exception as exc:  # pragma: no cover - gate fodder
                    reader_errors.append(exc)
                    return
                latencies.append(time.perf_counter() - t0)

    threads = [
        threading.Thread(target=reader, args=(lat,), daemon=True)
        for lat in reader_latencies
    ]
    for t in threads:
        t.start()
    try:
        summary = IngestPipeline(
            service, make_source(spec, seed=seed), batch_docs=batch_docs
        ).run()
    finally:
        done.set()
        for t in threads:
            t.join()
    merged = sorted(x for lat in reader_latencies for x in lat)

    # -- crash/resume bit-parity ----------------------------------------
    crash_docs = min(n_docs, 48)
    crash_spec = f"deep-tree:{crash_docs}"
    with tempfile.TemporaryDirectory(prefix="repro-ingest-bench-") as tmp:
        straight_dir = os.path.join(tmp, "straight")
        crashed_dir = os.path.join(tmp, "crashed")

        def fresh_service(root: str, hook=None) -> QueryService:
            store = DurableIndexStore(root, crash_hook=hook)
            index = HopiIndex.build(Collection(), backend=backend)
            store.initialize(index)
            return QueryService(index, durable_store=store)

        straight = fresh_service(straight_dir)
        IngestPipeline(
            straight, make_source(crash_spec, seed=seed),
            batch_docs=batch_docs, store_dir=straight_dir,
        ).run()
        straight_bytes = canonical_snapshot_bytes(straight.index.cover)
        straight.close()

        published = [0]

        def crash_hook(point: str) -> None:
            if point == "published":
                published[0] += 1
                if published[0] >= crash_after_batches:
                    raise _SimulatedCrash(
                        f"crash injected after publish #{published[0]}"
                    )

        doomed = fresh_service(crashed_dir, hook=crash_hook)
        crashed = False
        try:
            IngestPipeline(
                doomed, make_source(crash_spec, seed=seed),
                batch_docs=batch_docs, store_dir=crashed_dir,
            ).run()
        except _SimulatedCrash:
            crashed = True
        doomed._durable.close()

        store = DurableIndexStore(crashed_dir)
        checkpoint = FrontierCheckpoint.load(crashed_dir)
        cursor = checkpoint.cursor if checkpoint is not None else 0
        recovered = QueryService(
            store.recover(backend=backend), durable_store=store
        )
        resumed = IngestPipeline(
            recovered, make_source(crash_spec, seed=seed),
            batch_docs=batch_docs, store_dir=crashed_dir, cursor=cursor,
        ).run()
        resumed_bytes = canonical_snapshot_bytes(recovered.index.cover)
        recovered.close()

    crash_resume = {
        "docs": crash_docs,
        "crashed": crashed,
        "crash_after_batches": crash_after_batches,
        "resumed_from_cursor": cursor,
        "resumed_docs": resumed.docs,
        "skipped_on_resume": resumed.skipped,
        "bit_identical": resumed_bytes == straight_bytes,
    }

    # -- streaming vs batch-built differential --------------------------
    reference = collection_from_source(make_source(spec, seed=seed))
    streamed = service.index
    backends_identical: Dict[str, bool] = {}
    for candidate in BACKENDS:
        batch_engine = QueryEngine(HopiIndex.build(reference, backend=candidate))
        stream_engine = QueryEngine(streamed.with_backend(candidate))
        backends_identical[candidate] = all(
            sorted(r.target for r in batch_engine.evaluate(path))
            == sorted(r.target for r in stream_engine.evaluate(path))
            for path in paths
        )

    return {
        "source": spec,
        "seed": seed,
        "backend": backend,
        "batch_docs": batch_docs,
        "docs": summary.docs,
        "elements": summary.elements,
        "links": summary.links,
        "batches": summary.batches,
        "docs_per_second": summary.docs_per_second,
        "freshness_p50_ms": summary.freshness_p50_ms,
        "freshness_p99_ms": summary.freshness_p99_ms,
        "reader_threads": reader_threads,
        "reader_requests": len(merged),
        "reader_errors": len(reader_errors),
        "reader_p95_ms": (
            percentile(merged, 0.95) * 1000.0 if merged else None
        ),
        "crash_resume": crash_resume,
        "differential": {
            "paths": paths,
            "backends_identical": backends_identical,
            "all_identical": all(backends_identical.values()),
        },
    }


def run_service_benchmark(
    collection: Optional[Collection] = None,
    *,
    backend: str = "arrays",
    thread_counts: Sequence[int] = (1, 4, 16),
    requests_per_thread: int = 400,
    updates: int = 5,
) -> Dict[str, object]:
    """The full serving-tier benchmark; one ``BENCH_service.json`` entry."""
    collection = collection or bench_dblp()
    index = HopiIndex.build(
        collection,
        strategy="recursive",
        partitioner="node_weight",
        partition_limit=max(collection.num_elements // 16, 1),
        backend=backend,
    )
    paths = service_query_mix(collection)

    cold = run_cold_vs_cached(index, paths)

    closed: List[LoadRow] = []
    for n in thread_counts:
        service = QueryService(index.copy())
        closed.append(
            run_closed_loop(
                service, paths, threads=n, requests_per_thread=requests_per_thread
            )
        )

    open_service = QueryService(index.copy())
    open_row = run_open_loop(open_service, paths)

    swap_service = QueryService(index.copy())
    hot_swap = run_hot_swap_under_load(
        swap_service, paths, threads=4,
        requests_per_thread=requests_per_thread, updates=updates,
    )

    by_threads = {row.threads: row for row in closed}
    scaling = None
    if 1 in by_threads and 4 in by_threads:
        base = by_threads[1].throughput_rps
        scaling = by_threads[4].throughput_rps / base if base > 0 else None

    sharded = run_sharded_benchmark(collection, backend=backend, index=index)

    async_front_end = run_async_front_end_benchmark(index)

    write_path = run_write_path_benchmark(index, paths, backend=backend)

    ingestion = run_ingestion_benchmark(backend=backend)

    return {
        "collection": "DBLP",
        "backend": backend,
        "query_mix": list(paths),
        "cold_vs_cached": cold,
        "closed_loop": [asdict(row) for row in closed],
        "throughput_scaling_4v1": scaling,
        "open_loop": asdict(open_row),
        "hot_swap": asdict(hot_swap),
        "sharded": sharded,
        "async_front_end": async_front_end,
        "write_path": write_path,
        "ingestion": ingestion,
    }


def default_service_trajectory_path() -> Path:
    """The repo-root (or cwd) ``BENCH_service.json`` path."""
    return anchored_trajectory_path("BENCH_service.json")


def emit_bench_service_entry(
    result: Dict[str, object],
    *,
    path: Union[str, Path, None] = None,
) -> Dict[str, object]:
    """Append one entry to the ``BENCH_service.json`` trajectory."""
    if path is None:
        path = default_service_trajectory_path()
    return append_trajectory(path, result)
