"""The config-driven workload-matrix runner behind ``python -m repro.bench``.

Every benchmark suite used to own its orchestration: the query, build
and service suites each re-implemented axis sweeps, timing, trajectory
appends and bar checks inline. This module is the one runner they all
sit on now — a suite *declares* its axes, the cartesian product is
expanded into cells, every cell runs through one shared timing core,
and the suite's acceptance bars are declarative :class:`Gate` objects
evaluated (and reported) uniformly. A failed gate makes the whole run
exit non-zero, which is what lets CI fail on perf regressions instead
of silently archiving them.

The shape follows the SNIPPETS.md exemplars: ``nnbench`` declares
benchmarks with ``parametrize``/``product`` and runs them through one
``BenchmarkRunner`` + reporter; ``nl2sql`` expands a config matrix in
``run_matrix`` and lets a presenter ``sys.exit(1)`` on failures.

Vocabulary:

* :func:`product` — expand ``axis-name -> values`` declarations into
  the cartesian list of cells (dicts), with an optional filter.
* :class:`Cell` — one point of the product: a suite name plus its axis
  assignment, and (after running) the measured record + wall seconds.
* :class:`Gate` — one acceptance bar: a name, the bar's description,
  and a ``check(entry) -> (ok, detail)`` callable. ``ci_check`` (when
  set) replaces ``check`` under ``CI=1`` — the repo's existing pattern
  for timing bars that are meaningless on noisy oversubscribed runners
  (correctness gates never set it).
* :class:`SuiteSpec` — one suite: axes, per-cell runner, a collector
  that folds cell records into the suite's trajectory entry, gates,
  and a presenter for the human-readable tables.
* :class:`MatrixRunner` — expands, runs, collects, gates, reports.

Cells of one suite run **sequentially in declaration order** and share
a mutable context dict created by the suite's ``setup`` — later cells
may read what earlier cells stashed there (the build suite's RPC
loopback cell reuses the reference cover of the headline build cell,
exactly as the pre-matrix code did).
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Cell",
    "Gate",
    "GateResult",
    "MatrixReport",
    "MatrixRunner",
    "SuiteSpec",
    "bench_seed",
    "in_ci",
    "product",
]


def in_ci() -> bool:
    """True on a CI runner (the repo-wide relaxation switch for
    timing-sensitive bars; see e.g. the async tail bound)."""
    return bool(os.environ.get("CI"))


def bench_seed() -> int:
    """The run's synthetic-generator seed (``REPRO_BENCH_SEED``).

    One seed threads through every synthetic collection and workload
    generator so matrix cells are reproducible run-to-run; the default
    (2005 — the paper's year) matches what the generators always used.
    """
    return int(os.environ.get("REPRO_BENCH_SEED", "2005"))


def product(
    axes: Mapping[str, Sequence[Any]],
    *,
    where: Optional[Callable[[Dict[str, Any]], bool]] = None,
) -> List[Dict[str, Any]]:
    """Cartesian expansion of ``axis-name -> values`` into cell dicts.

    Axis order is declaration order (the first axis varies slowest).
    ``where`` filters the product — the matrix analogue of nnbench's
    parametrize-with-condition.
    """
    names = list(axes)
    cells = [
        dict(zip(names, values))
        for values in itertools.product(*(axes[n] for n in names))
    ]
    if where is not None:
        cells = [c for c in cells if where(c)]
    return cells


@dataclass
class Cell:
    """One expanded point of a suite's axis product."""

    suite: str
    axes: Dict[str, Any]
    record: Any = None
    seconds: float = 0.0

    @property
    def label(self) -> str:
        return " ".join(f"{k}={v}" for k, v in self.axes.items())


@dataclass(frozen=True)
class GateResult:
    """The outcome of evaluating one gate against a suite entry."""

    suite: str
    name: str
    passed: bool
    detail: str
    relaxed: bool = False


@dataclass
class Gate:
    """One declarative acceptance bar.

    ``check`` receives the suite's collected entry and returns
    ``(ok, detail)`` — the detail string is printed either way (the
    measured figure next to the bar). ``ci_check`` substitutes a
    relaxed predicate under ``CI=1``; leave it ``None`` for
    correctness gates, which hold everywhere.
    """

    name: str
    description: str
    check: Callable[[Any], Tuple[bool, str]]
    ci_check: Optional[Callable[[Any], Tuple[bool, str]]] = None

    def evaluate(self, suite: str, entry: Any) -> GateResult:
        relaxed = self.ci_check is not None and in_ci()
        predicate = self.ci_check if relaxed else self.check
        try:
            ok, detail = predicate(entry)
        except Exception as exc:  # a crashing gate is a failing gate
            ok, detail = False, f"gate raised {type(exc).__name__}: {exc}"
        return GateResult(
            suite=suite, name=self.name, passed=ok,
            detail=detail, relaxed=relaxed,
        )


def bound(
    name: str,
    description: str,
    value: Callable[[Any], Optional[float]],
    minimum: float,
    *,
    ci_minimum: Optional[float] = None,
    unit: str = "x",
) -> Gate:
    """A ``measured >= minimum`` gate over one scalar of the entry.

    The common bar shape (speedups, ratios). ``value`` returning
    ``None`` fails the gate (an unrecorded bar is a regression, not a
    pass). ``ci_minimum`` relaxes the threshold on CI runners.
    """

    def _check_at(threshold: float) -> Callable[[Any], Tuple[bool, str]]:
        def _check(entry: Any) -> Tuple[bool, str]:
            v = value(entry)
            if v is None:
                return False, "not recorded"
            return v >= threshold, f"{v:.2f}{unit} (bar >= {threshold}{unit})"

        return _check

    return Gate(
        name=name,
        description=description,
        check=_check_at(minimum),
        ci_check=None if ci_minimum is None else _check_at(ci_minimum),
    )


def ceiling(
    name: str,
    description: str,
    value: Callable[[Any], Optional[float]],
    maximum: float,
    *,
    ci_maximum: Optional[float] = None,
    unit: str = "",
) -> Gate:
    """A ``measured <= maximum`` gate (ratios that must stay low)."""

    def _check_at(threshold: float) -> Callable[[Any], Tuple[bool, str]]:
        def _check(entry: Any) -> Tuple[bool, str]:
            v = value(entry)
            if v is None:
                return False, "not recorded"
            return v <= threshold, f"{v:.2f}{unit} (bar <= {threshold}{unit})"

        return _check

    return Gate(
        name=name,
        description=description,
        check=_check_at(maximum),
        ci_check=None if ci_maximum is None else _check_at(ci_maximum),
    )


def truth(
    name: str,
    description: str,
    value: Callable[[Any], bool],
) -> Gate:
    """A boolean correctness gate (never relaxed)."""

    def _check(entry: Any) -> Tuple[bool, str]:
        ok = bool(value(entry))
        return ok, "ok" if ok else "violated"

    return Gate(name=name, description=description, check=_check)


@dataclass
class SuiteSpec:
    """One benchmark suite, declaratively.

    Attributes:
        name: the suite's CLI name (``query`` / ``service`` / ...).
        title: one-line description printed as the suite header.
        cells: the expanded axis product (see :func:`product`); cells
            run sequentially in this order.
        run_cell: ``(ctx, axes) -> record`` — measure one cell.
        setup: builds the shared mutable context dict (collections,
            base indexes) once per suite run.
        collect: ``(ctx, cells) -> entry`` — fold the measured cells
            into the suite's trajectory entry (and append it to the
            suite's ``BENCH_*.json``; collectors call the existing
            ``emit_bench_*_entry`` helpers so the on-disk shapes are
            unchanged).
        gates: the suite's acceptance bars, checked against the entry.
        present: prints the human-readable tables (``(ctx, entry,
            cells) -> None``).
    """

    name: str
    title: str
    cells: List[Dict[str, Any]]
    run_cell: Callable[[Dict[str, Any], Dict[str, Any]], Any]
    setup: Callable[[], Dict[str, Any]] = field(default=lambda: {})
    collect: Callable[
        [Dict[str, Any], List[Cell]], Any
    ] = field(default=lambda ctx, cells: None)
    gates: List[Gate] = field(default_factory=list)
    present: Optional[Callable[[Dict[str, Any], Any, List[Cell]], None]] = None


@dataclass
class SuiteReport:
    """One suite's run: its cells, collected entry and gate results."""

    name: str
    cells: List[Cell]
    entry: Any
    gates: List[GateResult]
    seconds: float

    @property
    def failed_gates(self) -> List[GateResult]:
        return [g for g in self.gates if not g.passed]


@dataclass
class MatrixReport:
    """The whole run; ``ok`` drives the process exit status."""

    suites: List[SuiteReport]
    seed: int

    @property
    def failed_gates(self) -> List[GateResult]:
        return [g for s in self.suites for g in s.failed_gates]

    @property
    def ok(self) -> bool:
        return not self.failed_gates


class MatrixRunner:
    """Expand, run, collect, gate and report a list of suites."""

    def __init__(self, specs: Sequence[SuiteSpec], *, verbose: bool = True):
        self._specs = {spec.name: spec for spec in specs}
        self._verbose = verbose

    @property
    def suite_names(self) -> List[str]:
        return list(self._specs)

    def run(self, names: Optional[Sequence[str]] = None) -> MatrixReport:
        names = list(names) if names is not None else list(self._specs)
        unknown = [n for n in names if n not in self._specs]
        if unknown:
            raise KeyError(f"unknown suite(s): {unknown}")
        reports = [self._run_suite(self._specs[n]) for n in names]
        report = MatrixReport(suites=reports, seed=bench_seed())
        if self._verbose:
            self._print_summary(report)
        return report

    def _run_suite(self, spec: SuiteSpec) -> SuiteReport:
        t_suite = time.perf_counter()
        if self._verbose:
            print(f"{spec.title} — {len(spec.cells)} cell(s), "
                  f"seed {bench_seed()}\n")
        ctx = spec.setup()
        cells: List[Cell] = []
        for axes in spec.cells:
            cell = Cell(suite=spec.name, axes=dict(axes))
            t0 = time.perf_counter()
            cell.record = spec.run_cell(ctx, cell.axes)
            cell.seconds = time.perf_counter() - t0
            cells.append(cell)
        entry = spec.collect(ctx, cells)
        gates = [gate.evaluate(spec.name, entry) for gate in spec.gates]
        if spec.present is not None and self._verbose:
            spec.present(ctx, entry, cells)
        return SuiteReport(
            name=spec.name,
            cells=cells,
            entry=entry,
            gates=gates,
            seconds=time.perf_counter() - t_suite,
        )

    # -- reporting ------------------------------------------------------
    def _print_summary(self, report: MatrixReport) -> None:
        print("\n== matrix summary ==")
        for suite in report.suites:
            print(
                f"suite {suite.name}: {len(suite.cells)} cell(s) in "
                f"{suite.seconds:.1f}s"
            )
            for result in suite.gates:
                flag = "PASS" if result.passed else "FAIL"
                relaxed = " [CI-relaxed]" if result.relaxed else ""
                print(
                    f"  {flag}{relaxed} {result.name}: {result.detail}"
                )
        failed = report.failed_gates
        if failed:
            print(f"\n{len(failed)} gate(s) FAILED:")
            for result in failed:
                print(f"  [{result.suite}] {result.name}: {result.detail}")
        else:
            print("\nall gates passed")
