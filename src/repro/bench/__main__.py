"""Regenerate the paper's experiments and the serving-tier benchmark.

``python -m repro.bench`` runs the Section-7 suite (the default);
``python -m repro.bench query`` runs just the label-backend and
selective-tail planner workloads and appends to ``BENCH_query.json``;
``python -m repro.bench service`` drives the serving tier under
concurrent load and appends to ``BENCH_service.json``;
``python -m repro.bench build`` compares serial vs parallel
divide-and-conquer builds and appends to ``BENCH_build.json``; ``all``
runs everything. Tables print at the configured scale (see
``REPRO_BENCH_SCALE``) next to the paper's reference values where
applicable.
"""

from __future__ import annotations

import argparse
import os

from repro.bench.harness import (
    PAPER_TABLE2,
    emit_bench_query_entry,
    run_backend_query_benchmark,
    run_center_preselection_ablation,
    run_distance_overhead,
    run_edge_weight_ablation,
    run_insert_document_experiment,
    run_maintenance_experiment,
    run_planner_benchmark,
    run_topk_benchmark,
    run_query_benchmark,
    run_table1,
    run_table2,
)
from repro.bench.build_bench import (
    JOIN_HEADLINE,
    emit_bench_build_entry,
    run_build_benchmark,
)
from repro.bench.reporting import print_table
from repro.bench.service_load import (
    emit_bench_service_entry,
    run_service_benchmark,
)
from repro.bench.workloads import bench_dblp, bench_inex, workload_scale
from repro.core.hopi import HopiIndex
from repro.core.stats import entries_per_node


def run_service_suite() -> None:
    """The serving-tier benchmark (appended to BENCH_service.json)."""
    print(f"HOPI serving-tier benchmark (scale {workload_scale()}x)\n")
    result = run_service_benchmark()
    entry = emit_bench_service_entry(result)

    cold = result["cold_vs_cached"]
    print_table(
        ["cold ms/q", "cached ms/q", "speedup"],
        [(round(cold["cold_ms_per_query"], 3),
          round(cold["cached_ms_per_query"], 4),
          round(cold["speedup"], 1))],
        title="Result cache: cold vs repeat evaluation",
    )

    print_table(
        ["threads", "requests", "errors", "rps", "p50 ms", "p95 ms",
         "p99 ms", "hit rate"],
        [
            (
                row["threads"], row["requests"], row["errors"],
                round(row["throughput_rps"]), round(row["p50_ms"], 3),
                round(row["p95_ms"], 3), round(row["p99_ms"], 3),
                round(row["hit_rate"], 3) if row["hit_rate"] is not None else "-",
            )
            for row in result["closed_loop"]
        ],
        title=(
            "Closed-loop load "
            f"(4-thread vs 1-thread throughput: "
            f"{round(result['throughput_scaling_4v1'], 2)}x)"
        ),
    )

    open_row = result["open_loop"]
    print_table(
        ["threads", "requests", "offered rps", "measured rps", "p50 ms",
         "p95 ms", "p99 ms"],
        [(open_row["threads"], open_row["requests"],
          round(open_row["offered_rps"]), round(open_row["throughput_rps"]),
          round(open_row["p50_ms"], 3), round(open_row["p95_ms"], 3),
          round(open_row["p99_ms"], 3))],
        title="Open-loop load (latency from scheduled arrival)",
    )

    swap = result["hot_swap"]
    print_table(
        ["updates", "requests", "errors", "torn", "epochs", "avg swap s"],
        [(swap["updates"], swap["requests"], swap["errors"], swap["torn"],
          len(swap["epochs_observed"]), round(swap["update_seconds_avg"], 4))],
        title="Hot swap under sustained 4-thread querying "
              "(errors and torn must be 0; appended to BENCH_service.json)",
    )
    assert swap["errors"] == 0, "hot swap produced failed requests"
    assert swap["torn"] == 0, "hot swap produced torn answers"

    sharded = result["sharded"]
    print_table(
        ["shards", "modeled rps", "p50 ms", "p99 ms", "busiest share",
         "parity"],
        [
            (
                row["shards"], round(row["modeled_rps"]),
                round(row["p50_ms"], 3), round(row["p99_ms"], 3),
                round(row["busiest_share"], 3),
                "yes" if row["parity_ok"] else "NO",
            )
            for row in sharded["rows"]
        ],
        title=(
            "Sharded scatter-gather serving "
            f"(4-shard vs 1-shard: {round(sharded['speedup_4v1'], 2)}x, "
            f"speedups {sharded['speedup_source']})"
        ),
    )
    rswap = sharded["rolling_swap"]
    kill = sharded["kill_one_shard"]
    print_table(
        ["updates", "requests", "errors", "torn", "kill reqs", "degraded",
         "hung", "max s", "healthz"],
        [(rswap["updates"], rswap["requests"], rswap["errors"],
          rswap["torn"], kill["requests"], kill["degraded"], kill["hung"],
          round(kill["max_seconds"], 3), kill["healthz_status"])],
        title="Rolling per-shard swap + kill-one-shard failover "
              "(errors, torn and hung must be 0)",
    )
    assert all(row["parity_ok"] for row in sharded["rows"]), (
        "sharded answers diverged from single-process serving"
    )
    assert rswap["errors"] == 0, "rolling swap produced failed requests"
    assert rswap["torn"] == 0, "rolling swap produced torn answers"
    assert kill["hung"] == 0, "kill-one-shard produced a hung request"
    assert kill["degraded"] == kill["requests"], (
        "dead shard did not surface as structured degraded errors"
    )
    assert kill["healthz_status"] == "degraded"

    front = result["async_front_end"]
    tail = front["tail"]
    print_table(
        ["clients", "requests", "errors", "p50 ms", "p95 ms", "p99 ms",
         "p99/p50"],
        [(tail["clients"], tail["requests"], tail["errors"],
          round(tail["p50_ms"], 3), round(tail["p95_ms"], 3),
          round(tail["p99_ms"], 3),
          round(tail["ratio_p99_p50"], 1)
          if tail["ratio_p99_p50"] is not None else "-")],
        title="Async front end, cold-miss tail over HTTP "
              "(ROADMAP gate: p99 within 100x of p50)",
    )
    overload = front["overload"]
    print_table(
        ["offered rps", "total", "ok", "shed", "degraded", "hung",
         "unstructured"],
        [(round(overload["offered_rps"]), overload["total"], overload["ok"],
          overload["shed"], overload["degraded"], overload["hung"],
          overload["unstructured"])],
        title="Async front end, open-loop overload burst "
              "(hung and unstructured must be 0; shed = structured 429s)",
    )
    # CI machines are noisy and oversubscribed; keep the hard gate for
    # local runs and a generous sanity bound for CI
    tail_bound = 1000.0 if os.environ.get("CI") else 100.0
    assert tail["errors"] == 0, "tail workload produced failed requests"
    assert tail["ratio_p99_p50"] is not None
    assert tail["ratio_p99_p50"] <= tail_bound, (
        f"cold-miss tail p99 is {tail['ratio_p99_p50']:.0f}x p50 "
        f"(bound {tail_bound:.0f}x)"
    )
    assert overload["hung"] == 0, "overload burst produced a hung request"
    assert overload["unstructured"] == 0, (
        "overload burst produced an unstructured error response"
    )
    assert overload["unexpected"] == 0, (
        "overload burst produced a status outside {200, 429, 503}"
    )

    wp = result["write_path"]
    under = wp["updates_under_readers"]
    print_table(
        ["updates", "upd/s", "readers", "reads", "read errs", "read rps",
         "read p95 ms"],
        [(under["updates"],
          round(under["updates_per_second"])
          if under["updates_per_second"] is not None else "-",
          under["reader_threads"], under["reader_requests"],
          under["reader_errors"],
          round(under["reader_throughput_rps"])
          if under["reader_throughput_rps"] is not None else "-",
          round(under["reader_p95_ms"], 3)
          if under["reader_p95_ms"] is not None else "-")],
        title="Write path: back-to-back updates under 4-thread querying",
    )
    sub = wp["publish_latency"]
    print_table(
        ["docs", "elements", "cow publish ms", "deep publish ms",
         "deep/cow"],
        [
            (row["documents"], row["elements"],
             round(row["cow_publish_seconds"] * 1000.0, 3),
             round(row["deep_publish_seconds"] * 1000.0, 3),
             round(row["deep_over_cow"], 2)
             if row["deep_over_cow"] is not None else "-")
            for row in sub["sizes"]
        ],
        title=(
            "Write path: single-op publish latency vs collection size "
            f"(COW exponent {round(sub['cow_scaling_exponent'], 2) if sub['cow_scaling_exponent'] is not None else '-'}, "
            f"deep-copy exponent {round(sub['deep_scaling_exponent'], 2) if sub['deep_scaling_exponent'] is not None else '-'}; "
            "COW must be sublinear)"
        ),
    )
    print_table(
        ["callers", "updates", "errors", "publishes", "upd/publish",
         "upd/s", "commit p95 ms"],
        [
            (row["callers"], row["updates"], row["errors"],
             row["publishes"],
             round(row["updates_per_publish"], 2)
             if row["updates_per_publish"] is not None else "-",
             round(row["updates_per_second"])
             if row["updates_per_second"] is not None else "-",
             round(row["commit_p95_ms"], 3)
             if row["commit_p95_ms"] is not None else "-")
            for row in wp["group_commit"]
        ],
        title="Write path: group-commit sweep (concurrent update callers)",
    )
    assert under["reader_errors"] == 0, (
        "write-path readers produced failed requests"
    )
    assert all(row["errors"] == 0 for row in wp["group_commit"]), (
        "group-commit sweep produced failed updates"
    )
    # the sublinearity gate: COW publish latency must grow slower than
    # collection size (the CI bound absorbs tiny-scale timer noise)
    exponent_bound = 1.25 if os.environ.get("CI") else 1.0
    assert sub["cow_scaling_exponent"] is not None
    assert sub["cow_scaling_exponent"] < exponent_bound, (
        f"COW publish latency is not sublinear: exponent "
        f"{sub['cow_scaling_exponent']:.2f} (bound {exponent_bound})"
    )


def run_build_suite() -> None:
    """The offline-build benchmark (appended to BENCH_build.json)."""
    print(f"HOPI offline-build benchmark (scale {workload_scale()}x)\n")
    result = run_build_benchmark()
    entry = emit_bench_build_entry(result)

    rows = []
    for name, coll in result["collections"].items():
        for backend, row in coll["backends"].items():
            rows.append(
                (
                    name, backend, coll["num_partitions"],
                    coll["num_cross_links"],
                    round(row["serial_seconds"], 3),
                    round(row["parallel_seconds"], 3),
                    row["speedup"],
                    "yes" if row["covers_identical"] else "NO",
                )
            )
    print_table(
        ["collection", "backend", "parts", "cross", "serial s",
         f"{result['workers']}w s", "speedup", "identical"],
        rows,
        title=(
            "Offline build: serial vs parallel divide-and-conquer "
            f"(host CPUs: {result['host_cpus']}, "
            f"speedups {result['speedup_source']}; "
            "appended to BENCH_build.json)"
        ),
    )

    join_rows = []
    for name, coll in result["collections"].items():
        for backend, row in coll["backends"].items():
            jp = row["join_parallel"]
            join_rows.append(
                (
                    name, backend, jp["shards"],
                    round(jp["serial_join_seconds"], 3),
                    round(jp["parallel_join_seconds"], 3),
                    jp["join_ratio"], jp["join_speedup"],
                )
            )
    print_table(
        ["collection", "backend", "shards", "serial join s",
         "parallel join s", "ratio", "speedup"],
        join_rows,
        title=(
            "Parallel join (sharded Ĥ distribution): headline "
            f"{JOIN_HEADLINE}/arrays ratio "
            f"{result['join_ratio']} (≤ 0.7 is the bar)"
        ),
    )

    rpc = result["rpc_loopback"]
    print_table(
        ["workers", "collection", "total s", "join s", "identical"],
        [(rpc["workers"], rpc["collection"],
          round(rpc["seconds_total"], 3), round(rpc["seconds_join"], 3),
          "yes" if rpc["covers_identical"] else "NO")],
        title="RPC loopback distributed build (repro build-worker x2)",
    )
    assert entry["covers_identical_all"], "parallel covers diverged"


def run_paper_suite() -> None:
    print(f"HOPI experiment harness (scale {workload_scale()}x)\n")

    # ---- Table 1 -------------------------------------------------------
    rows = run_table1()
    print_table(
        ["coll.", "# docs", "# els", "# links", "size MB", "els/doc",
         "paper els/doc"],
        [
            (
                r["collection"], r["docs"], r["elements"], r["links"],
                round(r["size_mb"], 2), round(r["elements_per_doc"], 1),
                round(r["paper_elements_per_doc"], 1),
            )
            for r in rows
        ],
        title="Table 1: collection features (scaled)",
    )

    # ---- Table 2 -------------------------------------------------------
    dblp = bench_dblp()
    t2 = run_table2(dblp)
    print_table(
        ["algorithm", "time s", "size", "compr.", "parts",
         "paper time s", "paper size", "paper compr."],
        [
            row.as_tuple() + PAPER_TABLE2.get(row.label, ("-", "-", "-"))
            for row in t2
        ],
        title="Table 2: index build time and size",
    )

    # ---- INEX build (Section 7.2 in-text) --------------------------------
    inex = bench_inex()
    index = HopiIndex.build(inex, strategy="recursive", partitioner="closure")
    print_table(
        ["collection", "cover size", "entries/node", "paper entries/node"],
        [("INEX", index.cover.size,
          round(entries_per_node(index.cover.size, inex.num_elements), 2),
          "< 3")],
        title="Section 7.2: INEX build",
    )

    # ---- Section 7.3: maintenance ----------------------------------------
    maint = run_maintenance_experiment(dblp, name="DBLP")
    maint_inex = run_maintenance_experiment(inex, name="INEX", sample_size=10)
    print_table(
        ["coll.", "separating %", "test s", "sep. delete s",
         "non-sep. delete s", "rebuild s", "paper"],
        [
            (
                m.collection,
                round(100 * m.separating_fraction, 1),
                round(m.avg_separator_test_seconds, 4),
                round(m.avg_separating_delete_seconds, 4),
                (
                    round(m.avg_nonseparating_delete_seconds, 4)
                    if m.avg_nonseparating_delete_seconds is not None
                    else "-"
                ),
                round(m.rebuild_seconds, 2),
                paper,
            )
            for m, paper in (
                (maint, "60% sep.; 2s test; 13s delete"),
                (maint_inex, "100% separate (no links)"),
            )
        ],
        title="Section 7.3: index maintenance",
    )

    ins = run_insert_document_experiment(dblp)
    print_table(
        ["inserts", "avg s", "max s"],
        [(int(ins["inserts"]), round(ins["avg_seconds"], 4),
          round(ins["max_seconds"], 4))],
        title="Section 6.1: document insertion",
    )

    # ---- Section 5: distance overhead ------------------------------------
    dist = run_distance_overhead(dblp)
    print_table(
        ["plain size", "distance size", "entry overhead", "byte overhead",
         "plain s", "distance s"],
        [(int(dist["plain_size"]), int(dist["distance_size"]),
          round(dist["entry_overhead"], 2), round(dist["byte_overhead"], 2),
          round(dist["plain_seconds"], 2), round(dist["distance_seconds"], 2))],
        title="Section 5: distance-aware cover overhead",
    )

    # ---- ablations ---------------------------------------------------------
    pre = run_center_preselection_ablation(dblp)
    print_table(
        ["with preselection", "without", "entries saved"],
        [(pre["with_preselection"], pre["without_preselection"],
          pre["entries_saved"])],
        title="Section 4.2 ablation: center preselection",
    )

    weights = run_edge_weight_ablation(dblp)
    print_table(
        ["edge weight", "time s", "size", "compr.", "parts"],
        [row.as_tuple() for row in weights],
        title="Section 4.3 ablation: edge weights",
    )

    # ---- query performance ---------------------------------------------
    q = run_query_benchmark(dblp)
    print_table(
        ["queries", "HOPI qps", "BFS qps", "speedup vs BFS"],
        [(int(q["queries"]), round(q["hopi_qps"]), round(q["bfs_qps"]),
          round(q["speedup_vs_bfs"], 1))],
        title="Query performance (E16; [26] covers this in depth)",
    )

    # ---- label backends + planner (one BENCH_query.json entry) -----------
    run_query_suite(dblp)


def run_query_suite(dblp=None) -> None:
    """The query benchmark: label backends (sets/arrays/vector) on the
    descendant-step workload, the selective-tail planner comparison and
    the ranked-topk heap-vs-full comparison — all recorded in one
    ``BENCH_query.json`` entry."""
    dblp = dblp if dblp is not None else bench_dblp()
    rows = run_backend_query_benchmark(
        dblp, backends=("sets", "arrays", "vector")
    )
    planner = run_planner_benchmark()
    topk = run_topk_benchmark(dblp)
    entry = emit_bench_query_entry(rows, planner=planner, topk=topk)
    print_table(
        ["backend", "queries", "cands", "p50 ms", "p95 ms", "total s", "|L|"],
        [
            (
                r.backend, r.queries, r.candidates, round(r.p50_ms, 3),
                round(r.p95_ms, 3), round(r.total_seconds, 3), r.cover_entries,
            )
            for r in rows.values()
        ],
        title=(
            "Label backends, descendant-step workload "
            f"(arrays vs sets: {entry.get('speedup_arrays_vs_sets', '-')}x; "
            f"vector vs arrays: {entry.get('speedup_vector_vs_arrays', '-')}x; "
            "appended to BENCH_query.json)"
        ),
    )
    print_table(
        ["backend", "path", "matches", "naive s", "planned s", "speedup"],
        [
            (
                r.backend, r.path, r.matches, round(r.naive_seconds, 4),
                round(r.planned_seconds, 4), r.speedup,
            )
            for r in planner.values()
        ],
        title=(
            "Selective-tail planner workload: planned (backward "
            "ancestors-side probes) vs naive left-to-right "
            f"(headline {entry.get('speedup_planned_vs_naive', '-')}x; "
            "≥ 2x is the bar)"
        ),
    )
    print_table(
        ["backend", "path", "limit", "matches", "full s", "heap s", "speedup"],
        [(
            topk.backend, topk.path, topk.limit, topk.matches,
            round(topk.full_seconds, 4), round(topk.heap_seconds, 4),
            topk.speedup,
        )],
        title=(
            "Ranked-topk workload: bounded heap vs full materialise-sort "
            f"(headline {entry.get('speedup_heap_vs_full', '-')}x)"
        ),
    )


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="HOPI benchmarks: the paper's Section-7 suite and "
                    "the serving-tier load generator",
    )
    parser.add_argument(
        "suite", nargs="?", default="paper",
        choices=["paper", "query", "service", "build", "all"],
        help="which benchmark suite to run (default: paper; 'query' "
             "runs just the label-backend + planner workloads and "
             "appends to BENCH_query.json)",
    )
    args = parser.parse_args()
    if args.suite in ("paper", "all"):
        run_paper_suite()
    if args.suite == "query":
        print(f"HOPI query benchmark (scale {workload_scale()}x)\n")
        run_query_suite()
    if args.suite in ("service", "all"):
        run_service_suite()
    if args.suite in ("build", "all"):
        run_build_suite()


if __name__ == "__main__":
    main()
