"""Regenerate the paper's experiments and the serving-tier benchmark.

``python -m repro.bench`` runs the Section-7 suite (the default);
``query`` / ``service`` / ``build`` run the label-backend + planner
workloads, the serving-tier load generator and the offline-build
comparison; ``all`` runs everything. Every suite is declared as a
:class:`~repro.bench.matrix.SuiteSpec` — axes expanded into cells, one
shared runner, one reporting path — and every acceptance bar is a
declarative :class:`~repro.bench.matrix.Gate`. **A failed gate exits
non-zero**; trajectory entries still append to ``BENCH_query.json`` /
``BENCH_service.json`` / ``BENCH_build.json`` in the exact pre-matrix
shapes. ``--seed N`` threads one seed through every synthetic
collection, workload and ingestion source; tables print at the
configured scale (``REPRO_BENCH_SCALE``) next to the paper's reference
values where applicable.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import asdict
from typing import Any, Dict, List

from repro.bench.harness import (
    PAPER_TABLE2,
    descendant_step_workload,
    emit_bench_query_entry,
    measure_backend_cell,
    measure_planner_cell,
    run_center_preselection_ablation,
    run_distance_overhead,
    run_edge_weight_ablation,
    run_insert_document_experiment,
    run_maintenance_experiment,
    run_topk_benchmark,
    run_query_benchmark,
    run_table1,
    run_table2,
)
from repro.bench.build_bench import (
    DEFAULT_WORKERS,
    HEADLINE_BACKEND,
    JOIN_HEADLINE,
    bench_build_collections,
    emit_bench_build_entry,
    host_cpus,
    measure_build_cell,
    measure_rpc_loopback,
)
from repro.bench.matrix import (
    Cell,
    MatrixReport,
    MatrixRunner,
    SuiteSpec,
    bound,
    ceiling,
    product,
    truth,
)
from repro.bench.reporting import print_table
from repro.bench.service_load import (
    emit_bench_service_entry,
    run_async_front_end_benchmark,
    run_closed_loop,
    run_cold_vs_cached,
    run_hot_swap_under_load,
    run_ingestion_benchmark,
    run_open_loop,
    run_sharded_benchmark,
    run_write_path_benchmark,
    service_query_mix,
)
from repro.bench.workloads import (
    SELECTIVE_RARE_TAG,
    bench_dblp,
    bench_dblp_selective,
    bench_inex,
    workload_scale,
)
from repro.core.hopi import HopiIndex
from repro.core.stats import entries_per_node
from repro.service.service import QueryService


def _recursive_index(collection, *, backend: str = "sets") -> HopiIndex:
    return HopiIndex.build(
        collection, strategy="recursive", partitioner="node_weight",
        partition_limit=max(collection.num_elements // 16, 1),
        backend=backend,
    )


# ---------------------------------------------------------------------------
# query suite: workload x backend
# ---------------------------------------------------------------------------

def _query_setup() -> Dict[str, Any]:
    dblp = bench_dblp()
    selective = bench_dblp_selective()
    sources, candidates = descendant_step_workload(dblp)
    return {
        "dblp": dblp,
        "base": _recursive_index(dblp),
        "sources": sources,
        "candidates": candidates,
        "selective": selective,
        "selective_base": _recursive_index(selective),
        "selective_path": f"//*//{SELECTIVE_RARE_TAG}",
        "rows": {}, "answers": {},
        "planner": {}, "planner_answers": {},
        "topk": None,
    }


def _query_cell(ctx: Dict[str, Any], axes: Dict[str, Any]) -> Any:
    backend = axes["backend"]
    if axes["workload"] == "descendant-step":
        row, answers = measure_backend_cell(
            ctx["base"], ctx["dblp"], ctx["sources"], ctx["candidates"],
            backend,
        )
        ctx["rows"][backend] = row
        ctx["answers"][backend] = answers
        return row
    if axes["workload"] == "selective-tail":
        row, answers = measure_planner_cell(
            ctx["selective_base"], ctx["selective"],
            ctx["selective_path"], backend,
        )
        ctx["planner"][backend] = row
        ctx["planner_answers"][backend] = answers
        return row
    ctx["topk"] = run_topk_benchmark(ctx["dblp"], backend=backend)
    return ctx["topk"]


def _query_collect(ctx: Dict[str, Any], cells: List[Cell]) -> Dict[str, Any]:
    entry = emit_bench_query_entry(
        ctx["rows"], planner=ctx["planner"], topk=ctx["topk"]
    )
    # cross-backend identity, checked over the raw per-cell answers
    # (post-append mutation: the underscore keys never reach the file)
    answers = list(ctx["answers"].values())
    entry["_backends_identical"] = all(a == answers[0] for a in answers[1:])
    planner_answers = list(ctx["planner_answers"].values())
    entry["_planner_backends_identical"] = all(
        a == planner_answers[0] for a in planner_answers[1:]
    )
    return entry


def _query_present(
    ctx: Dict[str, Any], entry: Dict[str, Any], cells: List[Cell]
) -> None:
    print_table(
        ["backend", "queries", "cands", "p50 ms", "p95 ms", "total s", "|L|"],
        [
            (
                r.backend, r.queries, r.candidates, round(r.p50_ms, 3),
                round(r.p95_ms, 3), round(r.total_seconds, 3), r.cover_entries,
            )
            for r in ctx["rows"].values()
        ],
        title=(
            "Label backends, descendant-step workload "
            f"(arrays vs sets: {entry.get('speedup_arrays_vs_sets', '-')}x; "
            f"vector vs arrays: {entry.get('speedup_vector_vs_arrays', '-')}x; "
            "appended to BENCH_query.json)"
        ),
    )
    print_table(
        ["backend", "path", "matches", "naive s", "planned s", "speedup"],
        [
            (
                r.backend, r.path, r.matches, round(r.naive_seconds, 4),
                round(r.planned_seconds, 4), r.speedup,
            )
            for r in ctx["planner"].values()
        ],
        title=(
            "Selective-tail planner workload: planned (backward "
            "ancestors-side probes) vs naive left-to-right "
            f"(headline {entry.get('speedup_planned_vs_naive', '-')}x; "
            "≥ 2x is the bar)"
        ),
    )
    topk = ctx["topk"]
    print_table(
        ["backend", "path", "limit", "matches", "full s", "heap s", "speedup"],
        [(
            topk.backend, topk.path, topk.limit, topk.matches,
            round(topk.full_seconds, 4), round(topk.heap_seconds, 4),
            topk.speedup,
        )],
        title=(
            "Ranked-topk workload: bounded heap vs full materialise-sort "
            f"(headline {entry.get('speedup_heap_vs_full', '-')}x)"
        ),
    )


def query_suite() -> SuiteSpec:
    cells = product({
        "workload": ["descendant-step", "selective-tail", "ranked-topk"],
        "backend": ["sets", "arrays", "vector"],
        # the planner comparison records sets+arrays (as always); the
        # ranked-topk study is an arrays-only headline
        }, where=lambda c: not (
            (c["workload"] == "selective-tail" and c["backend"] == "vector")
            or (c["workload"] == "ranked-topk" and c["backend"] != "arrays")
        ),
    )
    return SuiteSpec(
        name="query",
        title=f"HOPI query benchmark (scale {workload_scale()}x)",
        cells=cells,
        setup=_query_setup,
        run_cell=_query_cell,
        collect=_query_collect,
        present=_query_present,
        gates=[
            truth(
                "backends-identical",
                "all label backends answer the descendant-step workload "
                "bit-for-bit identically",
                lambda e: e["_backends_identical"],
            ),
            truth(
                "planner-backends-identical",
                "planner workload answers agree across backends",
                lambda e: e["_planner_backends_identical"],
            ),
            bound(
                "arrays-vs-sets",
                "arrays backend ≥ 2x sets on descendant-step (ROADMAP bar)",
                lambda e: e.get("speedup_arrays_vs_sets"), 2.0,
                ci_minimum=0.8,
            ),
            bound(
                "planned-vs-naive",
                "planned order ≥ 2x naive on the selective tail "
                "(ROADMAP bar)",
                lambda e: e.get("speedup_planned_vs_naive"), 2.0,
                ci_minimum=0.8,
            ),
            bound(
                "heap-vs-full",
                "bounded-heap top-k no slower than the full sort",
                lambda e: e.get("speedup_heap_vs_full"), 1.0,
                ci_minimum=0.25,
            ),
        ],
    )


# ---------------------------------------------------------------------------
# service suite: one cell per serving segment (threads where applicable)
# ---------------------------------------------------------------------------

def _service_setup() -> Dict[str, Any]:
    collection = bench_dblp()
    index = _recursive_index(collection, backend="arrays")
    return {
        "collection": collection,
        "index": index,
        "paths": service_query_mix(collection),
        "closed": [],
    }


def _service_cell(ctx: Dict[str, Any], axes: Dict[str, Any]) -> Any:
    index, paths = ctx["index"], ctx["paths"]
    segment = axes["segment"]
    if segment == "cold-cache":
        return run_cold_vs_cached(index, paths)
    if segment == "closed-loop":
        row = run_closed_loop(
            QueryService(index.copy()), paths,
            threads=axes["threads"], requests_per_thread=400,
        )
        ctx["closed"].append(row)
        return row
    if segment == "open-loop":
        return run_open_loop(QueryService(index.copy()), paths)
    if segment == "hot-swap":
        return run_hot_swap_under_load(
            QueryService(index.copy()), paths,
            threads=4, requests_per_thread=400, updates=5,
        )
    if segment == "sharded":
        return run_sharded_benchmark(
            ctx["collection"], backend="arrays", index=index
        )
    if segment == "async-front-end":
        return run_async_front_end_benchmark(index)
    if segment == "write-path":
        return run_write_path_benchmark(index, paths, backend="arrays")
    if segment == "ingestion":
        return run_ingestion_benchmark(backend="arrays")
    raise KeyError(f"unknown service segment {segment!r}")


def _service_collect(
    ctx: Dict[str, Any], cells: List[Cell]
) -> Dict[str, Any]:
    by_segment: Dict[str, Any] = {}
    for cell in cells:
        by_segment.setdefault(cell.axes["segment"], cell.record)
    closed = ctx["closed"]
    by_threads = {row.threads: row for row in closed}
    scaling = None
    if 1 in by_threads and 4 in by_threads:
        base = by_threads[1].throughput_rps
        scaling = by_threads[4].throughput_rps / base if base > 0 else None
    result = {
        "collection": "DBLP",
        "backend": "arrays",
        "query_mix": list(ctx["paths"]),
        "cold_vs_cached": by_segment["cold-cache"],
        "closed_loop": [asdict(row) for row in closed],
        "throughput_scaling_4v1": scaling,
        "open_loop": asdict(by_segment["open-loop"]),
        "hot_swap": asdict(by_segment["hot-swap"]),
        "sharded": by_segment["sharded"],
        "async_front_end": by_segment["async-front-end"],
        "write_path": by_segment["write-path"],
        "ingestion": by_segment["ingestion"],
    }
    return emit_bench_service_entry(result)


def _service_present(
    ctx: Dict[str, Any], result: Dict[str, Any], cells: List[Cell]
) -> None:
    cold = result["cold_vs_cached"]
    print_table(
        ["cold ms/q", "cached ms/q", "speedup"],
        [(round(cold["cold_ms_per_query"], 3),
          round(cold["cached_ms_per_query"], 4),
          round(cold["speedup"], 1))],
        title="Result cache: cold vs repeat evaluation",
    )

    print_table(
        ["threads", "requests", "errors", "rps", "p50 ms", "p95 ms",
         "p99 ms", "hit rate"],
        [
            (
                row["threads"], row["requests"], row["errors"],
                round(row["throughput_rps"]), round(row["p50_ms"], 3),
                round(row["p95_ms"], 3), round(row["p99_ms"], 3),
                round(row["hit_rate"], 3) if row["hit_rate"] is not None else "-",
            )
            for row in result["closed_loop"]
        ],
        title=(
            "Closed-loop load "
            f"(4-thread vs 1-thread throughput: "
            f"{round(result['throughput_scaling_4v1'], 2)}x)"
        ),
    )

    open_row = result["open_loop"]
    print_table(
        ["threads", "requests", "offered rps", "measured rps", "p50 ms",
         "p95 ms", "p99 ms"],
        [(open_row["threads"], open_row["requests"],
          round(open_row["offered_rps"]), round(open_row["throughput_rps"]),
          round(open_row["p50_ms"], 3), round(open_row["p95_ms"], 3),
          round(open_row["p99_ms"], 3))],
        title="Open-loop load (latency from scheduled arrival)",
    )

    swap = result["hot_swap"]
    print_table(
        ["updates", "requests", "errors", "torn", "epochs", "avg swap s"],
        [(swap["updates"], swap["requests"], swap["errors"], swap["torn"],
          len(swap["epochs_observed"]), round(swap["update_seconds_avg"], 4))],
        title="Hot swap under sustained 4-thread querying "
              "(errors and torn must be 0; appended to BENCH_service.json)",
    )

    sharded = result["sharded"]
    print_table(
        ["shards", "modeled rps", "p50 ms", "p99 ms", "busiest share",
         "parity"],
        [
            (
                row["shards"], round(row["modeled_rps"]),
                round(row["p50_ms"], 3), round(row["p99_ms"], 3),
                round(row["busiest_share"], 3),
                "yes" if row["parity_ok"] else "NO",
            )
            for row in sharded["rows"]
        ],
        title=(
            "Sharded scatter-gather serving "
            f"(4-shard vs 1-shard: {round(sharded['speedup_4v1'], 2)}x, "
            f"speedups {sharded['speedup_source']})"
        ),
    )
    rswap = sharded["rolling_swap"]
    kill = sharded["kill_one_shard"]
    print_table(
        ["updates", "requests", "errors", "torn", "kill reqs", "degraded",
         "hung", "max s", "healthz"],
        [(rswap["updates"], rswap["requests"], rswap["errors"],
          rswap["torn"], kill["requests"], kill["degraded"], kill["hung"],
          round(kill["max_seconds"], 3), kill["healthz_status"])],
        title="Rolling per-shard swap + kill-one-shard failover "
              "(errors, torn and hung must be 0)",
    )

    front = result["async_front_end"]
    tail = front["tail"]
    print_table(
        ["clients", "requests", "errors", "p50 ms", "p95 ms", "p99 ms",
         "p99/p50"],
        [(tail["clients"], tail["requests"], tail["errors"],
          round(tail["p50_ms"], 3), round(tail["p95_ms"], 3),
          round(tail["p99_ms"], 3),
          round(tail["ratio_p99_p50"], 1)
          if tail["ratio_p99_p50"] is not None else "-")],
        title="Async front end, cold-miss tail over HTTP "
              "(ROADMAP gate: p99 within 100x of p50)",
    )
    overload = front["overload"]
    print_table(
        ["offered rps", "total", "ok", "shed", "degraded", "hung",
         "unstructured"],
        [(round(overload["offered_rps"]), overload["total"], overload["ok"],
          overload["shed"], overload["degraded"], overload["hung"],
          overload["unstructured"])],
        title="Async front end, open-loop overload burst "
              "(hung and unstructured must be 0; shed = structured 429s)",
    )

    wp = result["write_path"]
    under = wp["updates_under_readers"]
    print_table(
        ["updates", "upd/s", "readers", "reads", "read errs", "read rps",
         "read p95 ms"],
        [(under["updates"],
          round(under["updates_per_second"])
          if under["updates_per_second"] is not None else "-",
          under["reader_threads"], under["reader_requests"],
          under["reader_errors"],
          round(under["reader_throughput_rps"])
          if under["reader_throughput_rps"] is not None else "-",
          round(under["reader_p95_ms"], 3)
          if under["reader_p95_ms"] is not None else "-")],
        title="Write path: back-to-back updates under 4-thread querying",
    )
    sub = wp["publish_latency"]
    print_table(
        ["docs", "elements", "cow publish ms", "deep publish ms",
         "deep/cow"],
        [
            (row["documents"], row["elements"],
             round(row["cow_publish_seconds"] * 1000.0, 3),
             round(row["deep_publish_seconds"] * 1000.0, 3),
             round(row["deep_over_cow"], 2)
             if row["deep_over_cow"] is not None else "-")
            for row in sub["sizes"]
        ],
        title=(
            "Write path: single-op publish latency vs collection size "
            f"(COW exponent {round(sub['cow_scaling_exponent'], 2) if sub['cow_scaling_exponent'] is not None else '-'}, "
            f"deep-copy exponent {round(sub['deep_scaling_exponent'], 2) if sub['deep_scaling_exponent'] is not None else '-'}; "
            "COW must be sublinear)"
        ),
    )
    print_table(
        ["callers", "updates", "errors", "publishes", "upd/publish",
         "upd/s", "commit p95 ms"],
        [
            (row["callers"], row["updates"], row["errors"],
             row["publishes"],
             round(row["updates_per_publish"], 2)
             if row["updates_per_publish"] is not None else "-",
             round(row["updates_per_second"])
             if row["updates_per_second"] is not None else "-",
             round(row["commit_p95_ms"], 3)
             if row["commit_p95_ms"] is not None else "-")
            for row in wp["group_commit"]
        ],
        title="Write path: group-commit sweep (concurrent update callers)",
    )

    ing = result["ingestion"]
    crash = ing["crash_resume"]
    diff = ing["differential"]
    print_table(
        ["source", "docs", "batches", "docs/s", "fresh p50 ms",
         "fresh p99 ms", "readers", "read errs", "crash-parity",
         "differential"],
        [(ing["source"], ing["docs"], ing["batches"],
          round(ing["docs_per_second"]),
          round(ing["freshness_p50_ms"], 2),
          round(ing["freshness_p99_ms"], 2),
          ing["reader_threads"], ing["reader_errors"],
          "yes" if crash["bit_identical"] else "NO",
          "yes" if diff["all_identical"] else "NO")],
        title="Streaming ingestion: group-commit pipeline under "
              "4-thread querying (crash/resume bit-parity and the "
              "streamed-vs-batch differential must hold)",
    )


def service_suite() -> SuiteSpec:
    cells = (
        [{"segment": "cold-cache"}]
        + product({"segment": ["closed-loop"], "threads": [1, 4, 16]})
        + [
            {"segment": "open-loop"},
            {"segment": "hot-swap"},
            {"segment": "sharded"},
            {"segment": "async-front-end"},
            {"segment": "write-path"},
            {"segment": "ingestion"},
        ]
    )
    return SuiteSpec(
        name="service",
        title=f"HOPI serving-tier benchmark (scale {workload_scale()}x)",
        cells=cells,
        setup=_service_setup,
        run_cell=_service_cell,
        collect=_service_collect,
        present=_service_present,
        gates=[
            bound(
                "cached-vs-cold",
                "result cache ≥ 10x cold evaluation (ROADMAP bar)",
                lambda e: e["cold_vs_cached"]["speedup"], 10.0,
                ci_minimum=1.5,
            ),
            bound(
                "throughput-4v1",
                "closed-loop throughput ≥ 2x at 4 threads vs 1 "
                "(ROADMAP bar)",
                lambda e: e["throughput_scaling_4v1"], 2.0,
                ci_minimum=0.8,
            ),
            truth(
                "hot-swap-clean",
                "zero failed and zero torn requests under hot swap",
                lambda e: e["hot_swap"]["errors"] == 0
                and e["hot_swap"]["torn"] == 0,
            ),
            truth(
                "sharded-parity",
                "sharded answers identical to single-process serving",
                lambda e: all(
                    row["parity_ok"] for row in e["sharded"]["rows"]
                ),
            ),
            truth(
                "rolling-swap-clean",
                "zero failed and zero torn requests under rolling "
                "per-shard swaps",
                lambda e: e["sharded"]["rolling_swap"]["errors"] == 0
                and e["sharded"]["rolling_swap"]["torn"] == 0,
            ),
            truth(
                "failover-structured",
                "kill-one-shard: no hangs, every request degrades "
                "structurally, healthz reports degraded",
                lambda e: e["sharded"]["kill_one_shard"]["hung"] == 0
                and e["sharded"]["kill_one_shard"]["degraded"]
                == e["sharded"]["kill_one_shard"]["requests"]
                and e["sharded"]["kill_one_shard"]["healthz_status"]
                == "degraded",
            ),
            truth(
                "async-tail-errors",
                "cold-miss tail workload: zero failed requests",
                lambda e: e["async_front_end"]["tail"]["errors"] == 0,
            ),
            ceiling(
                "async-tail-p99-p50",
                "cold-miss tail p99 within 100x of p50 (ROADMAP gate)",
                lambda e: e["async_front_end"]["tail"]["ratio_p99_p50"],
                100.0, ci_maximum=1000.0, unit="x",
            ),
            truth(
                "overload-structured",
                "overload burst: zero hangs, zero unstructured errors, "
                "no statuses outside {200, 429, 503}",
                lambda e: e["async_front_end"]["overload"]["hung"] == 0
                and e["async_front_end"]["overload"]["unstructured"] == 0
                and e["async_front_end"]["overload"]["unexpected"] == 0,
            ),
            truth(
                "write-path-clean",
                "zero reader errors under back-to-back updates and zero "
                "failed updates in the group-commit sweep",
                lambda e: e["write_path"]["updates_under_readers"][
                    "reader_errors"
                ] == 0
                and all(
                    row["errors"] == 0
                    for row in e["write_path"]["group_commit"]
                ),
            ),
            bound(
                # the 3-point exponent fit is noise-dominated at these
                # sub-millisecond publishes; the stable COW signal is the
                # per-size deep/cow ratio at the largest collection
                "cow-vs-deep",
                "COW publish beats the legacy deep-copy shadow at the "
                "largest sweep size",
                lambda e: e["write_path"]["publish_latency"]["sizes"][-1][
                    "deep_over_cow"
                ],
                1.2, ci_minimum=0.8, unit="x",
            ),
            truth(
                "ingest-crash-resume",
                "ingest killed mid-publish, recovered and resumed, is "
                "bit-identical to an uninterrupted run",
                lambda e: e["ingestion"]["crash_resume"]["crashed"]
                and e["ingestion"]["crash_resume"]["bit_identical"],
            ),
            truth(
                "ingest-differential",
                "streamed index answers identical to a batch-built "
                "index over the same final collection, on all backends",
                lambda e: e["ingestion"]["differential"]["all_identical"],
            ),
            truth(
                "ingest-reader-errors",
                "zero reader errors while the ingest pipeline publishes",
                lambda e: e["ingestion"]["reader_errors"] == 0,
            ),
            bound(
                "ingest-throughput",
                "sustained streaming ingestion under 4-thread querying",
                lambda e: e["ingestion"]["docs_per_second"], 50.0,
                ci_minimum=5.0, unit=" docs/s",
            ),
        ],
    )


# ---------------------------------------------------------------------------
# build suite: collection x backend x executor
# ---------------------------------------------------------------------------

def _build_setup() -> Dict[str, Any]:
    cpus = host_cpus()
    return {
        "collections": bench_build_collections(),
        "cpus": cpus,
        "measured": cpus >= 2,
        "per_collection": {},
        "rpc_reference": None,
        "rpc_limit": 1,
        "rpc_loopback": None,
    }


def _build_cell(ctx: Dict[str, Any], axes: Dict[str, Any]) -> Any:
    if axes["executor"] == "rpc":
        linked, _ = ctx["collections"][axes["collection"]]
        ctx["rpc_loopback"] = measure_rpc_loopback(
            linked,
            partition_limit=ctx["rpc_limit"],
            reference_entries=ctx["rpc_reference"],
        )
        return ctx["rpc_loopback"]
    name, backend = axes["collection"], axes["backend"]
    collection, limit = ctx["collections"][name]
    cell = measure_build_cell(
        name, collection, backend=backend, limit=limit,
        workers=DEFAULT_WORKERS, repeats=3, measured=ctx["measured"],
    )
    info = ctx["per_collection"].setdefault(name, {
        "documents": collection.num_documents,
        "elements": collection.num_elements,
        "links": collection.num_links,
        "num_partitions": cell["num_partitions"],
        "num_cross_links": cell["num_cross_links"],
        "partition_limit": limit,
        "backends": {},
    })
    info["backends"][backend] = cell["row"]
    if name == JOIN_HEADLINE and backend == HEADLINE_BACKEND:
        ctx["rpc_reference"] = cell["reference_entries"]
        ctx["rpc_limit"] = limit
    return cell["row"]


def _build_collect(ctx: Dict[str, Any], cells: List[Cell]) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "workers": DEFAULT_WORKERS,
        "host_cpus": ctx["cpus"],
        "speedup_source": "measured" if ctx["measured"] else "modeled-single-cpu",
        "collections": ctx["per_collection"],
    }
    headline = result["collections"]["INEX"]["backends"][HEADLINE_BACKEND]
    result["speedup_workers4"] = headline["speedup"]
    join_headline = result["collections"][JOIN_HEADLINE]["backends"][
        HEADLINE_BACKEND
    ]["join_parallel"]
    result["join_ratio"] = join_headline["join_ratio"]
    result["join_speedup"] = join_headline["join_speedup"]
    result["rpc_loopback"] = ctx["rpc_loopback"]
    result["covers_identical_all"] = all(
        row["covers_identical"]
        for coll in result["collections"].values()
        for row in coll["backends"].values()
    ) and ctx["rpc_loopback"]["covers_identical"]
    return emit_bench_build_entry(result)


def _build_present(
    ctx: Dict[str, Any], result: Dict[str, Any], cells: List[Cell]
) -> None:
    rows = []
    for name, coll in result["collections"].items():
        for backend, row in coll["backends"].items():
            rows.append(
                (
                    name, backend, coll["num_partitions"],
                    coll["num_cross_links"],
                    round(row["serial_seconds"], 3),
                    round(row["parallel_seconds"], 3),
                    row["speedup"],
                    "yes" if row["covers_identical"] else "NO",
                )
            )
    print_table(
        ["collection", "backend", "parts", "cross", "serial s",
         f"{result['workers']}w s", "speedup", "identical"],
        rows,
        title=(
            "Offline build: serial vs parallel divide-and-conquer "
            f"(host CPUs: {result['host_cpus']}, "
            f"speedups {result['speedup_source']}; "
            "appended to BENCH_build.json)"
        ),
    )

    join_rows = []
    for name, coll in result["collections"].items():
        for backend, row in coll["backends"].items():
            jp = row["join_parallel"]
            join_rows.append(
                (
                    name, backend, jp["shards"],
                    round(jp["serial_join_seconds"], 3),
                    round(jp["parallel_join_seconds"], 3),
                    jp["join_ratio"], jp["join_speedup"],
                )
            )
    print_table(
        ["collection", "backend", "shards", "serial join s",
         "parallel join s", "ratio", "speedup"],
        join_rows,
        title=(
            "Parallel join (sharded Ĥ distribution): headline "
            f"{JOIN_HEADLINE}/arrays ratio "
            f"{result['join_ratio']} (≤ 0.7 is the bar)"
        ),
    )

    rpc = result["rpc_loopback"]
    print_table(
        ["workers", "collection", "total s", "join s", "identical"],
        [(rpc["workers"], rpc["collection"],
          round(rpc["seconds_total"], 3), round(rpc["seconds_join"], 3),
          "yes" if rpc["covers_identical"] else "NO")],
        title="RPC loopback distributed build (repro build-worker x2)",
    )


def build_suite() -> SuiteSpec:
    cells = [
        dict(cell, executor="process")
        for cell in product({
            "collection": ["INEX", "INEX-linked", "DBLP"],
            "backend": ["sets", "arrays"],
        })
    ] + [
        # the distributed executor: two `repro build-worker` daemons
        # over the loopback, identity-checked against the headline cell
        {"collection": JOIN_HEADLINE, "backend": HEADLINE_BACKEND,
         "executor": "rpc"},
    ]
    return SuiteSpec(
        name="build",
        title=f"HOPI offline-build benchmark (scale {workload_scale()}x)",
        cells=cells,
        setup=_build_setup,
        run_cell=_build_cell,
        collect=_build_collect,
        present=_build_present,
        gates=[
            truth(
                "covers-identical",
                "every parallel/distributed cover bit-identical to its "
                "serial twin (ROADMAP bar)",
                lambda e: e["covers_identical_all"],
            ),
            bound(
                "build-speedup",
                "divide-and-conquer ≥ 1.8x serial on INEX/arrays "
                "(ROADMAP bar)",
                lambda e: e["speedup_workers4"], 1.8,
                ci_minimum=0.5,
            ),
            ceiling(
                "join-ratio",
                "sharded join ≤ 0.7x the serial join on the headline "
                "collection (ROADMAP bar)",
                lambda e: e["join_ratio"], 0.7, ci_maximum=5.0, unit="x",
            ),
        ],
    )


# ---------------------------------------------------------------------------
# paper suite: the Section-7 experiments (tables only, no gates)
# ---------------------------------------------------------------------------

def _paper_setup() -> Dict[str, Any]:
    return {"dblp": bench_dblp(), "inex": bench_inex(), "records": {}}


def _paper_cell(ctx: Dict[str, Any], axes: Dict[str, Any]) -> Any:
    dblp, inex = ctx["dblp"], ctx["inex"]
    experiment = axes["experiment"]
    if experiment == "table1":
        record = run_table1()
    elif experiment == "table2":
        record = run_table2(dblp)
    elif experiment == "inex-build":
        record = HopiIndex.build(
            inex, strategy="recursive", partitioner="closure"
        )
    elif experiment == "maintenance-dblp":
        record = run_maintenance_experiment(dblp, name="DBLP")
    elif experiment == "maintenance-inex":
        record = run_maintenance_experiment(inex, name="INEX", sample_size=10)
    elif experiment == "insert-document":
        record = run_insert_document_experiment(dblp)
    elif experiment == "distance-overhead":
        record = run_distance_overhead(dblp)
    elif experiment == "center-preselection":
        record = run_center_preselection_ablation(dblp)
    elif experiment == "edge-weights":
        record = run_edge_weight_ablation(dblp)
    elif experiment == "query-vs-bfs":
        record = run_query_benchmark(dblp)
    else:
        raise KeyError(f"unknown paper experiment {experiment!r}")
    ctx["records"][experiment] = record
    return record


def _paper_present(
    ctx: Dict[str, Any], entry: Dict[str, Any], cells: List[Cell]
) -> None:
    records = ctx["records"]
    inex = ctx["inex"]

    print_table(
        ["coll.", "# docs", "# els", "# links", "size MB", "els/doc",
         "paper els/doc"],
        [
            (
                r["collection"], r["docs"], r["elements"], r["links"],
                round(r["size_mb"], 2), round(r["elements_per_doc"], 1),
                round(r["paper_elements_per_doc"], 1),
            )
            for r in records["table1"]
        ],
        title="Table 1: collection features (scaled)",
    )

    print_table(
        ["algorithm", "time s", "size", "compr.", "parts",
         "paper time s", "paper size", "paper compr."],
        [
            row.as_tuple() + PAPER_TABLE2.get(row.label, ("-", "-", "-"))
            for row in records["table2"]
        ],
        title="Table 2: index build time and size",
    )

    index = records["inex-build"]
    print_table(
        ["collection", "cover size", "entries/node", "paper entries/node"],
        [("INEX", index.cover.size,
          round(entries_per_node(index.cover.size, inex.num_elements), 2),
          "< 3")],
        title="Section 7.2: INEX build",
    )

    print_table(
        ["coll.", "separating %", "test s", "sep. delete s",
         "non-sep. delete s", "rebuild s", "paper"],
        [
            (
                m.collection,
                round(100 * m.separating_fraction, 1),
                round(m.avg_separator_test_seconds, 4),
                round(m.avg_separating_delete_seconds, 4),
                (
                    round(m.avg_nonseparating_delete_seconds, 4)
                    if m.avg_nonseparating_delete_seconds is not None
                    else "-"
                ),
                round(m.rebuild_seconds, 2),
                paper,
            )
            for m, paper in (
                (records["maintenance-dblp"], "60% sep.; 2s test; 13s delete"),
                (records["maintenance-inex"], "100% separate (no links)"),
            )
        ],
        title="Section 7.3: index maintenance",
    )

    ins = records["insert-document"]
    print_table(
        ["inserts", "avg s", "max s"],
        [(int(ins["inserts"]), round(ins["avg_seconds"], 4),
          round(ins["max_seconds"], 4))],
        title="Section 6.1: document insertion",
    )

    dist = records["distance-overhead"]
    print_table(
        ["plain size", "distance size", "entry overhead", "byte overhead",
         "plain s", "distance s"],
        [(int(dist["plain_size"]), int(dist["distance_size"]),
          round(dist["entry_overhead"], 2), round(dist["byte_overhead"], 2),
          round(dist["plain_seconds"], 2), round(dist["distance_seconds"], 2))],
        title="Section 5: distance-aware cover overhead",
    )

    pre = records["center-preselection"]
    print_table(
        ["with preselection", "without", "entries saved"],
        [(pre["with_preselection"], pre["without_preselection"],
          pre["entries_saved"])],
        title="Section 4.2 ablation: center preselection",
    )

    print_table(
        ["edge weight", "time s", "size", "compr.", "parts"],
        [row.as_tuple() for row in records["edge-weights"]],
        title="Section 4.3 ablation: edge weights",
    )

    q = records["query-vs-bfs"]
    print_table(
        ["queries", "HOPI qps", "BFS qps", "speedup vs BFS"],
        [(int(q["queries"]), round(q["hopi_qps"]), round(q["bfs_qps"]),
          round(q["speedup_vs_bfs"], 1))],
        title="Query performance (E16; [26] covers this in depth)",
    )


def paper_suite() -> SuiteSpec:
    cells = product({
        "experiment": [
            "table1", "table2", "inex-build", "maintenance-dblp",
            "maintenance-inex", "insert-document", "distance-overhead",
            "center-preselection", "edge-weights", "query-vs-bfs",
        ],
    })
    return SuiteSpec(
        name="paper",
        title=f"HOPI experiment harness (scale {workload_scale()}x)",
        cells=cells,
        setup=_paper_setup,
        run_cell=_paper_cell,
        present=_paper_present,
    )


# ---------------------------------------------------------------------------
# runner plumbing + legacy entry points
# ---------------------------------------------------------------------------

#: CLI suite name -> the matrix suites it runs (``paper`` has always
#: included the query workloads; ``all`` is everything)
SUITE_SELECTIONS = {
    "paper": ["paper", "query"],
    "query": ["query"],
    "service": ["service"],
    "build": ["build"],
    "all": ["paper", "query", "service", "build"],
}


def build_runner(*, verbose: bool = True) -> MatrixRunner:
    return MatrixRunner(
        [paper_suite(), query_suite(), service_suite(), build_suite()],
        verbose=verbose,
    )


def _run_selection(selection: str, *, verbose: bool = True) -> MatrixReport:
    return build_runner(verbose=verbose).run(SUITE_SELECTIONS[selection])


def _raise_on_failure(report: MatrixReport) -> MatrixReport:
    if not report.ok:
        failed = ", ".join(
            f"[{g.suite}] {g.name}: {g.detail}" for g in report.failed_gates
        )
        raise RuntimeError(f"benchmark gate(s) failed: {failed}")
    return report


def run_paper_suite() -> MatrixReport:
    """The Section-7 experiments + query workloads (legacy entry point)."""
    return _raise_on_failure(_run_selection("paper"))


def run_query_suite() -> MatrixReport:
    """The query benchmark (one BENCH_query.json entry)."""
    return _raise_on_failure(_run_selection("query"))


def run_service_suite() -> MatrixReport:
    """The serving-tier benchmark (appended to BENCH_service.json)."""
    return _raise_on_failure(_run_selection("service"))


def run_build_suite() -> MatrixReport:
    """The offline-build benchmark (appended to BENCH_build.json)."""
    return _raise_on_failure(_run_selection("build"))


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="HOPI benchmarks: the paper's Section-7 suite and "
                    "the serving-tier load generator, run through one "
                    "workload-matrix runner (exits non-zero on any "
                    "failed bar)",
    )
    parser.add_argument(
        "suite", nargs="?", default="paper",
        choices=list(SUITE_SELECTIONS),
        help="which benchmark suite to run (default: paper; 'query' "
             "runs just the label-backend + planner workloads and "
             "appends to BENCH_query.json)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed for every synthetic collection/workload/ingestion "
             "generator (default: REPRO_BENCH_SEED or 2005); recorded "
             "in the matrix summary",
    )
    args = parser.parse_args()
    if args.seed is not None:
        os.environ["REPRO_BENCH_SEED"] = str(args.seed)
    report = _run_selection(args.suite)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
