"""Shared plumbing for the ``BENCH_*.json`` trajectory files.

Every benchmark suite appends structured entries to a JSON list at the
repo root (``BENCH_query.json`` / ``BENCH_service.json`` /
``BENCH_build.json``) so future PRs can diff performance against
history. The anchor-resolution and append-with-corruption-backup logic
lives here once; the per-suite ``emit_bench_*_entry`` functions only
shape their entry.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Union

PathLike = Union[str, Path]


def anchored_trajectory_path(filename: str) -> Path:
    """``filename`` at the repo root when running from a checkout
    (anchored by ROADMAP.md), else the current directory — so
    ``python -m repro.bench`` appends to one history regardless of
    where it is launched from."""
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "ROADMAP.md").exists():
        return candidate / filename
    return Path(filename)


def append_trajectory(
    path: PathLike, entry: Dict[str, object]
) -> Dict[str, object]:
    """Append ``entry`` (timestamped) to the JSON list at ``path``.

    The file holds a JSON list; a non-list file is coerced into one. A
    corrupt file is never silently dropped: it is preserved next to the
    fresh history as ``<path>.corrupt``. Returns the stored entry.
    """
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        **entry,
    }
    path = Path(path)
    history: List[Dict[str, object]] = []
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            history = loaded if isinstance(loaded, list) else [loaded]
        except ValueError:
            backup = path.with_suffix(path.suffix + ".corrupt")
            backup.write_bytes(path.read_bytes())
            print(
                f"warning: {path} is not valid JSON; saved as {backup} "
                "and started a fresh trajectory"
            )
    history.append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return entry
