"""The offline-build benchmark: serial vs parallel divide-and-conquer.

``python -m repro.bench build`` measures what the parallel pipeline
(:mod:`repro.core.pipeline`) buys on the benchmark collection and
appends one entry per run to ``BENCH_build.json`` — the build-side
sibling of ``BENCH_query.json`` and ``BENCH_service.json``:

* per-phase wall times (partitioning / partition covers / join) for a
  serial and a ``workers=4`` process-pool build, per label backend;
* the serial-vs-parallel speedup;
* partition counts, balance, cover size — and a hard **identity check**
  that the parallel build's cover entries equal the serial build's on
  both backends (a speedup that changes answers is a bug, not a win).

The benchmark collection is the deep-document INEX-like workload at
three times the usual bench scale: cover construction dominates its build
(the phase Section 4 parallelises — the paper's 45h baseline was cover
construction), where the citation-linked DBLP workload is join-bound; a
DBLP data point is recorded alongside for exactly that contrast.

**Single-CPU hosts.** A process pool cannot beat a serial build without
a second core. When the host exposes fewer than 2 CPUs, the entry
records ``speedup_source: "modeled-single-cpu"`` and derives the
parallel total from measured quantities only, charging every gram of
overhead serially: the parallel run's partitioning/join phases and its
*entire* pool overhead (spawn, pickle, encode/decode, backend
conversion — measured as the parallel run's excess over the serial
per-partition compute) stay sequential, and only the per-partition
cover times (taken from the *serial* run, uninflated by time-slicing)
are scheduled onto ``workers`` bins with LPT. On a multi-core host the
speedup is simply measured (``speedup_source: "measured"``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bench.trajectory import anchored_trajectory_path, append_trajectory
from repro.bench.workloads import bench_dblp, bench_inex, workload_scale
from repro.core.hopi import HopiIndex
from repro.xmlmodel.model import Collection

#: worker count of the parallel leg (the acceptance bar's 4-way build)
DEFAULT_WORKERS = 4

#: the headline backend (the ROADMAP's production representation)
HEADLINE_BACKEND = "arrays"


def host_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def lpt_makespan(times: List[float], bins: int) -> float:
    """Longest-processing-time-first schedule length of ``times`` over
    ``bins`` identical workers — the classic 4/3-approximate makespan,
    used to model the partition-cover phase on ``bins`` real cores."""
    if not times or bins < 1:
        return 0.0
    loads = [0.0] * bins
    for t in sorted(times, reverse=True):
        loads[loads.index(min(loads))] += t
    return max(loads)


def _build(collection: Collection, *, backend: str, workers: Optional[int],
           **kwargs) -> HopiIndex:
    return HopiIndex.build(
        collection,
        strategy="recursive",
        partitioner="node_weight",
        backend=backend,
        workers=workers,
        **kwargs,
    )


def run_build_benchmark(
    *,
    workers: int = DEFAULT_WORKERS,
    backends: tuple = ("sets", "arrays"),
    repeats: int = 3,
) -> Dict[str, object]:
    """Serial vs ``workers``-process builds on the benchmark collections.

    Each leg runs ``repeats`` times and the fastest run is reported
    (the usual defence against scheduler noise; every run's cover is
    identity-checked regardless). Returns the structured result that
    :func:`emit_bench_build_entry` appends to ``BENCH_build.json``;
    raises if any parallel build's cover differs from its serial twin.
    """
    scale = workload_scale()
    cpus = host_cpus()
    measured = cpus >= 2
    collections = {
        "INEX": (bench_inex(3 * scale), 16),
        "DBLP": (bench_dblp(scale), 16),
    }
    result: Dict[str, object] = {
        "workers": workers,
        "host_cpus": cpus,
        "speedup_source": "measured" if measured else "modeled-single-cpu",
        "collections": {},
    }
    for name, (collection, limit_divisor) in collections.items():
        limit = max(collection.num_elements // limit_divisor, 1)
        per_backend: Dict[str, object] = {}
        for backend in backends:
            serial = parallel = None
            identical = True
            for _ in range(max(repeats, 1)):
                s_run = _build(
                    collection, backend=backend, workers=None,
                    partition_limit=limit,
                )
                p_run = _build(
                    collection, backend=backend, workers=workers,
                    partition_limit=limit,
                )
                # the recorded flag is the conjunction of the per-run
                # comparisons — every repetition is checked, and any
                # divergence (even a flaky one) is a hard error
                identical = identical and sorted(
                    s_run.cover.entries()
                ) == sorted(p_run.cover.entries())
                if not identical:
                    raise RuntimeError(
                        f"{name}/{backend}: parallel build diverged from serial"
                    )
                if serial is None or (
                    s_run.stats.seconds_total < serial.stats.seconds_total
                ):
                    serial = s_run
                if parallel is None or (
                    p_run.stats.seconds_total < parallel.stats.seconds_total
                ):
                    parallel = p_run
            ss, ps = serial.stats, parallel.stats
            serial_compute = sum(ss.partition_cover_seconds)
            if measured:
                parallel_seconds = ps.seconds_total
            else:
                # all overhead (pool spawn, pickle, wire encode/decode,
                # backend conversion) stays serial in the model; only
                # the clean serial per-partition times are scheduled
                # onto `workers` bins.
                overhead = max(
                    ps.seconds_total
                    - ps.seconds_partitioning
                    - ps.seconds_join
                    - serial_compute,
                    0.0,
                )
                parallel_seconds = (
                    ps.seconds_partitioning
                    + ps.seconds_join
                    + lpt_makespan(ss.partition_cover_seconds, workers)
                    + overhead
                )
            per_backend[backend] = {
                "serial_seconds": round(ss.seconds_total, 4),
                "parallel_seconds": round(parallel_seconds, 4),
                "parallel_measured_seconds": round(ps.seconds_total, 4),
                "speedup": round(ss.seconds_total / max(parallel_seconds, 1e-9), 2),
                "covers_identical": identical,
                "cover_size": ss.cover_size,
                "phases_serial": {
                    "partitioning": round(ss.seconds_partitioning, 4),
                    "partition_covers": round(ss.seconds_partition_covers, 4),
                    "join": round(ss.seconds_join, 4),
                },
                "phases_parallel": {
                    "partitioning": round(ps.seconds_partitioning, 4),
                    "partition_covers": round(ps.seconds_partition_covers, 4),
                    "join": round(ps.seconds_join, 4),
                },
                "partition_cover_seconds_max": round(
                    max(ss.partition_cover_seconds, default=0.0), 4
                ),
            }
        result["collections"][name] = {
            "documents": collection.num_documents,
            "elements": collection.num_elements,
            "links": collection.num_links,
            "num_partitions": serial.stats.num_partitions,
            "num_cross_links": serial.stats.num_cross_links,
            "partition_limit": limit,
            "backends": per_backend,
        }
    headline = result["collections"]["INEX"]["backends"][HEADLINE_BACKEND]
    result["speedup_workers4"] = headline["speedup"]
    result["covers_identical_all"] = all(
        row["covers_identical"]
        for coll in result["collections"].values()
        for row in coll["backends"].values()
    )
    return result


def default_trajectory_path() -> Path:
    """The repo-root (or cwd) ``BENCH_build.json`` path."""
    return anchored_trajectory_path("BENCH_build.json")


def emit_bench_build_entry(
    result: Dict[str, object],
    *,
    path: Union[str, Path, None] = None,
) -> Dict[str, object]:
    """Append one trajectory entry to ``BENCH_build.json``.

    The file holds a JSON list; each run appends, so future PRs can
    diff build time, speedup and cover size against history.
    """
    if path is None:
        path = default_trajectory_path()
    return append_trajectory(path, {"workload": "offline-build", **result})
