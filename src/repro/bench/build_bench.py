"""The offline-build benchmark: serial vs parallel divide-and-conquer.

``python -m repro.bench build`` measures what the parallel pipeline
(:mod:`repro.core.pipeline`) buys on the benchmark collection and
appends one entry per run to ``BENCH_build.json`` — the build-side
sibling of ``BENCH_query.json`` and ``BENCH_service.json``:

* per-phase wall times (partitioning / partition covers / join) for a
  serial and a ``workers=4`` process-pool build, per label backend;
* the serial-vs-parallel speedup;
* a ``join_parallel`` block per collection/backend — serial join wall
  vs the sharded join of :func:`repro.core.join.
  join_covers_recursive_parallel` with its per-phase breakdown (PSG
  closure / shard computations / assembly), the join ratio and
  speedup;
* an ``rpc_loopback`` entry: one distributed build against two
  in-process ``repro build-worker`` daemons, identity-checked against
  the serial build;
* partition counts, balance, cover size — and a hard **identity check**
  that the parallel build's cover entries equal the serial build's on
  both backends (a speedup that changes answers is a bug, not a win).

Three collections are swept at three times the usual bench scale:
the deep-document INEX-like workload (cover construction dominates —
the phase Section 4 parallelises; the paper's 45h baseline was cover
construction), the **INEX-linked** workload (the same trees plus dense
citation-style links, where the cross-link join dominates — the
paper's "most of the time was spent joining the covers" profile, and
the collection the ``join_ratio`` headline is measured on), and the
citation-linked DBLP workload for contrast.

**Single-CPU hosts.** A process pool cannot beat a serial build without
a second core. When the host exposes fewer than 2 CPUs, the entry
records ``speedup_source: "modeled-single-cpu"`` and derives the
parallel total from measured quantities only, charging every gram of
overhead serially: the parallel run's partitioning/join phases and its
*entire* pool overhead (spawn, pickle, encode/decode, backend
conversion — measured as the parallel run's excess over the serial
per-partition compute) stay sequential, and only the per-partition
cover times (taken from the *serial* run, uninflated by time-slicing)
are scheduled onto ``workers`` bins with LPT. On a multi-core host the
speedup is simply measured (``speedup_source: "measured"``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.bench.trajectory import anchored_trajectory_path, append_trajectory
from repro.bench.workloads import (
    bench_dblp,
    bench_inex,
    bench_inex_linked,
    workload_scale,
)
from repro.core.hopi import HopiIndex
from repro.xmlmodel.model import Collection

#: worker count of the parallel leg (the acceptance bar's 4-way build)
DEFAULT_WORKERS = 4

#: the headline backend (the ROADMAP's production representation)
HEADLINE_BACKEND = "arrays"

#: the join-heavy collection the parallel-join bar is measured on
JOIN_HEADLINE = "INEX-linked"


def host_cpus() -> int:
    """CPUs actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def lpt_makespan(times: List[float], bins: int) -> float:
    """Longest-processing-time-first schedule length of ``times`` over
    ``bins`` identical workers — the classic 4/3-approximate makespan,
    used to model the partition-cover phase on ``bins`` real cores."""
    if not times or bins < 1:
        return 0.0
    loads = [0.0] * bins
    for t in sorted(times, reverse=True):
        loads[loads.index(min(loads))] += t
    return max(loads)


def _build(collection: Collection, *, backend: str, workers: Optional[int],
           **kwargs) -> HopiIndex:
    return HopiIndex.build(
        collection,
        strategy="recursive",
        partitioner="node_weight",
        backend=backend,
        workers=workers,
        **kwargs,
    )


def measure_join_parallel(
    collection: Collection,
    *,
    backend: str,
    workers: int,
    partition_limit: int,
    serial_join_seconds: float,
    reference_entries: list,
    measured: bool,
    measured_stats=None,
    repeats: int = 2,
) -> Dict[str, object]:
    """Serial vs sharded join wall on one collection/backend.

    On a multicore host the sharded join is simply measured — the main
    benchmark loop's ``workers=N`` runs already shard the join, so
    their best stats are re-used via ``measured_stats`` (no extra
    builds). On a single CPU the model of the module docstring applies
    to the join phase alone: a ``threads``/1-worker run yields clean
    sequential per-shard times (and re-uses the phase-2 wire blobs
    exactly like a real parallel run); the PSG closure, the cover
    union/assembly and every gram of task-prep/decode overhead are
    charged serially, and only the shard computations are
    LPT-scheduled onto ``workers`` bins.
    """
    if measured and measured_stats is not None:
        ps = measured_stats
    else:
        best = None
        for _ in range(max(repeats, 1)):
            if measured:
                run = _build(
                    collection, backend=backend, workers=workers,
                    partition_limit=partition_limit,
                )
            else:
                run = _build(
                    collection, backend=backend, workers=None,
                    partition_limit=partition_limit,
                    executor="threads", join_shards=workers,
                )
            if sorted(run.cover.entries()) != reference_entries:
                raise RuntimeError(
                    f"sharded join diverged from serial ({backend})"
                )
            if best is None or run.stats.seconds_join < best.seconds_join:
                best = run.stats
        ps = best
    shard_sum = sum(ps.join_shard_seconds)
    if measured:
        parallel_join = ps.seconds_join
    else:
        overhead = max(ps.seconds_join_distribute - shard_sum, 0.0)
        parallel_join = (
            ps.seconds_join_union
            + ps.seconds_join_psg
            + lpt_makespan(ps.join_shard_seconds, workers)
            + overhead
        )
    return {
        "shards": ps.join_shards,
        "serial_join_seconds": round(serial_join_seconds, 4),
        "parallel_join_seconds": round(parallel_join, 4),
        "join_ratio": round(
            parallel_join / max(serial_join_seconds, 1e-9), 3
        ),
        "join_speedup": round(
            serial_join_seconds / max(parallel_join, 1e-9), 2
        ),
        "phases": {
            "psg": round(ps.seconds_join_psg, 4),
            "union": round(ps.seconds_join_union, 4),
            "distribute_wall": round(ps.seconds_join_distribute, 4),
            "shard_seconds": [round(s, 4) for s in ps.join_shard_seconds],
            "shard_seconds_sum": round(shard_sum, 4),
        },
    }


def measure_rpc_loopback(
    collection: Collection,
    *,
    partition_limit: int,
    reference_entries: list,
    n_workers: int = 2,
) -> Dict[str, object]:
    """One distributed build against loopback ``build-worker`` daemons.

    Records the paper's "different machines" scenario end to end: two
    RPC workers in this process serve partition-cover and join-shard
    tasks over real sockets, and the resulting cover is identity-
    checked against the serial build. Wall times on a loopback are a
    smoke record (the workers share this host's CPUs), not a speedup
    claim.
    """
    from repro.core.rpc import start_worker_thread

    servers = []
    addresses = []
    try:
        for _ in range(n_workers):
            server, address = start_worker_thread()
            servers.append(server)
            addresses.append(address)
        run = _build(
            collection, backend=HEADLINE_BACKEND, workers=None,
            partition_limit=partition_limit,
            executor="rpc", rpc_workers=addresses,
        )
    finally:
        for server in servers:
            server.shutdown()
            server.server_close()
    identical = sorted(run.cover.entries()) == reference_entries
    if not identical:
        raise RuntimeError("rpc-loopback build diverged from serial")
    stats = run.stats
    return {
        "workers": n_workers,
        "collection": JOIN_HEADLINE,
        "backend": HEADLINE_BACKEND,
        "executor": stats.executor,
        "join_shards": stats.join_shards,
        "seconds_total": round(stats.seconds_total, 4),
        "seconds_join": round(stats.seconds_join, 4),
        "covers_identical": identical,
    }


def bench_build_collections(
    scale: Optional[float] = None,
) -> Dict[str, tuple]:
    """The build suite's collection axis: ``name -> (collection,
    partition limit)``. Shared by :func:`run_build_benchmark` and the
    matrix runner so both sweep the identical product."""
    scale = workload_scale() if scale is None else scale
    collections = {
        "INEX": (bench_inex(3 * scale), 16),
        "INEX-linked": (bench_inex_linked(3 * scale), 16),
        "DBLP": (bench_dblp(scale), 16),
    }
    return {
        name: (
            collection,
            max(collection.num_elements // divisor, 1),
        )
        for name, (collection, divisor) in collections.items()
    }


def measure_build_cell(
    name: str,
    collection: Collection,
    *,
    backend: str,
    limit: int,
    workers: int = DEFAULT_WORKERS,
    repeats: int = 3,
    measured: Optional[bool] = None,
) -> Dict[str, object]:
    """One ``collection x backend`` cell of the offline-build matrix.

    Runs the serial and the ``workers``-process leg ``repeats`` times
    each, keeps the fastest (the usual defence against scheduler
    noise), identity-checks every repetition's cover against its
    serial twin, and folds in the parallel-join sub-study. Returns the
    per-backend row of the ``BENCH_build.json`` shape plus the cell's
    ``reference_entries`` and partition stats (the RPC-loopback cell
    and the collection header reuse them).
    """
    if measured is None:
        measured = host_cpus() >= 2
    serial = parallel = None
    reference_entries = None
    identical = True
    for _ in range(max(repeats, 1)):
        s_run = _build(
            collection, backend=backend, workers=None,
            partition_limit=limit,
        )
        p_run = _build(
            collection, backend=backend, workers=workers,
            partition_limit=limit,
        )
        # the recorded flag is the conjunction of the per-run
        # comparisons — every repetition is checked, and any
        # divergence (even a flaky one) is a hard error
        reference_entries = sorted(s_run.cover.entries())
        identical = identical and reference_entries == sorted(
            p_run.cover.entries()
        )
        if not identical:
            raise RuntimeError(
                f"{name}/{backend}: parallel build diverged from serial"
            )
        if serial is None or (
            s_run.stats.seconds_total < serial.stats.seconds_total
        ):
            serial = s_run
        if parallel is None or (
            p_run.stats.seconds_total < parallel.stats.seconds_total
        ):
            parallel = p_run
    ss, ps = serial.stats, parallel.stats
    join_parallel = measure_join_parallel(
        collection,
        backend=backend,
        workers=workers,
        partition_limit=limit,
        serial_join_seconds=ss.seconds_join,
        reference_entries=reference_entries,
        measured=measured,
        measured_stats=ps,
    )
    serial_compute = sum(ss.partition_cover_seconds)
    if measured:
        parallel_seconds = ps.seconds_total
    else:
        # all overhead (pool spawn, pickle, wire encode/decode,
        # backend conversion) stays serial in the model; only
        # the clean serial per-partition times are scheduled
        # onto `workers` bins.
        overhead = max(
            ps.seconds_total
            - ps.seconds_partitioning
            - ps.seconds_join
            - serial_compute,
            0.0,
        )
        parallel_seconds = (
            ps.seconds_partitioning
            + ps.seconds_join
            + lpt_makespan(ss.partition_cover_seconds, workers)
            + overhead
        )
    row = {
        "serial_seconds": round(ss.seconds_total, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "parallel_measured_seconds": round(ps.seconds_total, 4),
        "speedup": round(ss.seconds_total / max(parallel_seconds, 1e-9), 2),
        "covers_identical": identical,
        "cover_size": ss.cover_size,
        "phases_serial": {
            "partitioning": round(ss.seconds_partitioning, 4),
            "partition_covers": round(ss.seconds_partition_covers, 4),
            "join": round(ss.seconds_join, 4),
        },
        "phases_parallel": {
            "partitioning": round(ps.seconds_partitioning, 4),
            "partition_covers": round(ps.seconds_partition_covers, 4),
            "join": round(ps.seconds_join, 4),
        },
        "partition_cover_seconds_max": round(
            max(ss.partition_cover_seconds, default=0.0), 4
        ),
        "join_parallel": join_parallel,
    }
    return {
        "row": row,
        "reference_entries": reference_entries,
        "num_partitions": ss.num_partitions,
        "num_cross_links": ss.num_cross_links,
    }


def run_build_benchmark(
    *,
    workers: int = DEFAULT_WORKERS,
    backends: tuple = ("sets", "arrays"),
    repeats: int = 3,
) -> Dict[str, object]:
    """Serial vs ``workers``-process builds on the benchmark collections.

    Each leg runs ``repeats`` times and the fastest run is reported
    (the usual defence against scheduler noise; every run's cover is
    identity-checked regardless). Returns the structured result that
    :func:`emit_bench_build_entry` appends to ``BENCH_build.json``;
    raises if any parallel build's cover differs from its serial twin.
    The matrix runner drives the same :func:`measure_build_cell` core
    one ``collection x backend`` cell at a time.
    """
    cpus = host_cpus()
    measured = cpus >= 2
    collections = bench_build_collections()
    result: Dict[str, object] = {
        "workers": workers,
        "host_cpus": cpus,
        "speedup_source": "measured" if measured else "modeled-single-cpu",
        "collections": {},
    }
    rpc_reference = None
    rpc_limit = 1
    for name, (collection, limit) in collections.items():
        per_backend: Dict[str, object] = {}
        cell = None
        for backend in backends:
            cell = measure_build_cell(
                name, collection,
                backend=backend, limit=limit, workers=workers,
                repeats=repeats, measured=measured,
            )
            per_backend[backend] = cell["row"]
            if name == JOIN_HEADLINE and backend == HEADLINE_BACKEND:
                rpc_reference = cell["reference_entries"]
                rpc_limit = limit
        result["collections"][name] = {
            "documents": collection.num_documents,
            "elements": collection.num_elements,
            "links": collection.num_links,
            "num_partitions": cell["num_partitions"],
            "num_cross_links": cell["num_cross_links"],
            "partition_limit": limit,
            "backends": per_backend,
        }
    result["covers_identical_all"] = all(
        row["covers_identical"]
        for coll in result["collections"].values()
        for row in coll["backends"].values()
    )
    if HEADLINE_BACKEND not in backends:
        # a sets-only sweep has no headline rows or rpc reference cover
        return result
    headline = result["collections"]["INEX"]["backends"][HEADLINE_BACKEND]
    result["speedup_workers4"] = headline["speedup"]
    join_headline = result["collections"][JOIN_HEADLINE]["backends"][
        HEADLINE_BACKEND
    ]["join_parallel"]
    result["join_ratio"] = join_headline["join_ratio"]
    result["join_speedup"] = join_headline["join_speedup"]
    linked_collection, _ = collections[JOIN_HEADLINE]
    result["rpc_loopback"] = measure_rpc_loopback(
        linked_collection,
        partition_limit=rpc_limit,
        reference_entries=rpc_reference,
    )
    result["covers_identical_all"] = (
        result["covers_identical_all"]
        and result["rpc_loopback"]["covers_identical"]
    )
    return result


def default_trajectory_path() -> Path:
    """The repo-root (or cwd) ``BENCH_build.json`` path."""
    return anchored_trajectory_path("BENCH_build.json")


def emit_bench_build_entry(
    result: Dict[str, object],
    *,
    path: Union[str, Path, None] = None,
) -> Dict[str, object]:
    """Append one trajectory entry to ``BENCH_build.json``.

    The file holds a JSON list; each run appends, so future PRs can
    diff build time, speedup and cover size against history.
    """
    if path is None:
        path = default_trajectory_path()
    return append_trajectory(path, {"workload": "offline-build", **result})
