"""Reusable fault-injection and load generators for the serving tier.

Both the test suite (via ``tests/harness.py``) and the bench harness
(:mod:`repro.bench.service_load`) drive the HTTP front ends through
these primitives, so a failure mode exercised in CI is measured by the
same code in ``BENCH_service.json``:

* :func:`cold_miss_paths` — deterministic distinct-plan path
  expressions; every request compiles and evaluates a plan the result
  cache has never seen (the convoy that produced the 25000x p99/p50
  gap this work attacks);
* :func:`slow_shard` / :func:`dead_shard` — context managers that
  degrade one shard of a live :class:`~repro.service.shard.ShardRouter`
  by wrapping its transport client (added latency, or hard
  :class:`~repro.service.shard.ShardUnavailableError`);
* :func:`open_loop_burst` — an open-loop load generator: requests fire
  on schedule *regardless of completions* (closed-loop clients
  self-throttle and can never observe queue collapse), every response
  is classified (ok / shed / degraded / unstructured / hung);
* :func:`cold_miss_convoy` — N clients released through a barrier onto
  the same cold path at the same instant, for coalescing checks.

Everything here is stdlib-only and transport-level: the generators
speak plain HTTP to whichever front end is listening, so the same
scenario runs against the threaded and asyncio servers unchanged.
"""

from __future__ import annotations

import http.client
import itertools
import json
import random
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.service.shard import ShardRouter, ShardUnavailableError

#: the dblp_like tag vocabulary (see ``repro.xmlmodel.generator``):
#: children of ``article`` usable as existence predicates, and tags
#: reachable as descendants — the raw material for distinct plans
_PREDICATE_TAGS = (
    "title", "year", "pages", "authors", "metadata", "keywords", "citations",
)
_LEAF_TAGS = (
    "author", "keyword", "cite", "booktitle", "publisher", "ee", "url",
    "title", "year", "pages",
)


def cold_miss_paths(n: int, *, seed: int = 0) -> List[str]:
    """``n`` distinct-plan path expressions over the dblp_like schema.

    Enumerates predicate-decorated descendant combinations
    (``//article[keywords]//cite``, ``//article[title][year]//author``,
    …) so each path compiles to a distinct plan and misses the
    ``(path, epoch)`` result cache. The enumeration is deterministic
    (shuffled by ``seed``), so a workload is reproducible across runs
    and front ends. Raises if ``n`` exceeds the distinct pool — a
    cold-miss workload that silently repeated paths would measure the
    cache, not the misses.
    """
    combos: List[str] = []
    for leaf in _LEAF_TAGS:
        combos.append(f"//article//{leaf}")
    for pred, leaf in itertools.product(_PREDICATE_TAGS, _LEAF_TAGS):
        combos.append(f"//article[{pred}]//{leaf}")
    for (p1, p2), leaf in itertools.product(
        itertools.permutations(_PREDICATE_TAGS, 2), _LEAF_TAGS
    ):
        combos.append(f"//article[{p1}][{p2}]//{leaf}")
    if n > len(combos):
        raise ValueError(
            f"only {len(combos)} distinct cold-miss paths available, "
            f"asked for {n}"
        )
    rng = random.Random(seed)
    rng.shuffle(combos)
    return combos[:n]


# ---------------------------------------------------------------------------
# shard degradation (wrap one transport client of a live router)
# ---------------------------------------------------------------------------


class _SlowClient:
    """Delegating shard client that sleeps before every request."""

    def __init__(self, inner: Any, delay: float) -> None:
        self._inner = inner
        self.delay = delay
        self.shard_id = inner.shard_id
        self.address = getattr(inner, "address", None)

    def request(self, payload: Dict[str, Any]) -> Any:
        time.sleep(self.delay)
        return self._inner.request(payload)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class _DeadClient:
    """Delegating shard client whose transport is hard down."""

    def __init__(self, inner: Any) -> None:
        self._inner = inner
        self.shard_id = inner.shard_id
        self.address = getattr(inner, "address", None)

    def request(self, payload: Dict[str, Any]) -> Any:
        raise ShardUnavailableError(
            [self.shard_id],
            f"shard {self.shard_id} killed by fault injection",
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


@contextmanager
def slow_shard(
    router: ShardRouter, shard_id: int, delay: float
) -> Iterator[None]:
    """Add ``delay`` seconds to every request one shard answers.

    The router's fan-out deadline still applies, so a slow-enough shard
    turns into a structured degraded answer — exactly the production
    failure mode (GC pause, overloaded worker) this simulates.
    """
    original = router._clients[shard_id]
    router._clients[shard_id] = _SlowClient(original, delay)
    try:
        yield
    finally:
        router._clients[shard_id] = original


@contextmanager
def dead_shard(router: ShardRouter, shard_id: int) -> Iterator[None]:
    """Make one shard hard-unreachable for the duration of the block.

    Scatter requests that need the shard raise
    :class:`ShardUnavailableError` (→ structured 503 with
    ``shards_down``); soft-scatter probes (stats/healthz) report the
    shard unreachable instead of failing.
    """
    original = router._clients[shard_id]
    router._clients[shard_id] = _DeadClient(original)
    try:
        yield
    finally:
        router._clients[shard_id] = original


# ---------------------------------------------------------------------------
# HTTP load generation
# ---------------------------------------------------------------------------


@dataclass
class RequestOutcome:
    """One request as the client experienced it."""

    status: Optional[int]  #: HTTP status, or None if the request hung
    elapsed: float  #: seconds from send to full response (or give-up)
    structured: bool  #: body parsed as JSON and, on error, carried
    #: the structured ``{"error": ...}`` shape
    error_code: Optional[str] = None  #: ``error.code`` on /v1 errors
    hung: bool = False  #: no complete response within the deadline
    retry_after: Optional[int] = None  #: Retry-After header on sheds


@dataclass
class BurstReport:
    """Classification of every request an :func:`open_loop_burst` sent."""

    outcomes: List[RequestOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    def count(self, *statuses: int) -> int:
        return sum(1 for o in self.outcomes if o.status in statuses)

    @property
    def ok(self) -> int:
        return self.count(200)

    @property
    def shed(self) -> int:
        """Requests refused by admission control (429)."""
        return self.count(429)

    @property
    def degraded(self) -> int:
        """Requests answered 503 (deadline missed / shard down)."""
        return self.count(503)

    @property
    def hung(self) -> int:
        """Requests with no complete response within the deadline."""
        return sum(1 for o in self.outcomes if o.hung)

    @property
    def unstructured(self) -> int:
        """Non-200 responses missing the structured error body."""
        return sum(
            1
            for o in self.outcomes
            if not o.hung and o.status != 200 and not o.structured
        )

    @property
    def unexpected(self) -> int:
        """Responses outside the overload contract {200, 429, 503}."""
        return sum(
            1
            for o in self.outcomes
            if not o.hung and o.status not in (200, 429, 503)
        )

    def latencies(self, *statuses: int) -> List[float]:
        wanted = statuses or (200,)
        return sorted(
            o.elapsed for o in self.outcomes if o.status in wanted
        )

    def summary(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "ok": self.ok,
            "shed": self.shed,
            "degraded": self.degraded,
            "hung": self.hung,
            "unstructured": self.unstructured,
            "unexpected": self.unexpected,
        }


def _one_request(
    host: str,
    port: int,
    path: str,
    *,
    timeout: float,
    method: str = "GET",
    body: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
) -> RequestOutcome:
    """Send one HTTP request on a fresh connection and classify it."""
    t0 = time.perf_counter()
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        send_headers = dict(headers) if headers else {}
        if body is not None:
            send_headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=send_headers)
        response = conn.getresponse()
        raw = response.read()
        elapsed = time.perf_counter() - t0
        retry_after_header = response.getheader("Retry-After")
        retry_after = (
            int(retry_after_header) if retry_after_header is not None else None
        )
        structured = False
        error_code: Optional[str] = None
        try:
            payload = json.loads(raw)
            if response.status == 200:
                structured = True
            else:
                error = payload.get("error")
                if isinstance(error, dict) and "code" in error:
                    structured = True
                    error_code = error["code"]
                elif isinstance(error, str) and payload.get("deprecated"):
                    structured = True  # legacy flat error shape
        except ValueError:
            structured = False
        return RequestOutcome(
            status=response.status,
            elapsed=elapsed,
            structured=structured,
            error_code=error_code,
            retry_after=retry_after,
        )
    except (socket.timeout, TimeoutError):
        return RequestOutcome(
            status=None,
            elapsed=time.perf_counter() - t0,
            structured=False,
            hung=True,
        )
    except (ConnectionError, OSError, http.client.HTTPException):
        # connection refused/reset: the server *answered* the transport
        # layer promptly (a reset is not a hang) but outside the
        # structured contract — classify as unexpected, not hung
        return RequestOutcome(
            status=-1,
            elapsed=time.perf_counter() - t0,
            structured=False,
        )
    finally:
        conn.close()


def open_loop_burst(
    host: str,
    port: int,
    paths: List[str],
    *,
    rate: float,
    duration: float,
    timeout: float = 30.0,
    max_inflight_senders: int = 256,
    headers: Optional[Dict[str, str]] = None,
) -> BurstReport:
    """Open-loop load: fire requests on schedule, never wait for answers.

    One sender thread per scheduled request (bounded by
    ``max_inflight_senders`` — beyond that arrivals are dropped rather
    than silently turning the generator closed-loop). ``paths`` are
    cycled in order; each request gets a fresh connection so shed (429)
    answers cannot slow later arrivals. Blocks until every sender has a
    classified outcome, then returns the :class:`BurstReport`.
    """
    report = BurstReport()
    report_lock = threading.Lock()
    threads: List[threading.Thread] = []
    live = threading.Semaphore(max_inflight_senders)
    interval = 1.0 / rate
    n_requests = max(1, int(rate * duration))
    path_cycle = itertools.cycle(paths)
    start = time.perf_counter()

    def _fire(path: str) -> None:
        try:
            outcome = _one_request(
                host, port, path, timeout=timeout, headers=headers
            )
            with report_lock:
                report.outcomes.append(outcome)
        finally:
            live.release()

    for i in range(n_requests):
        # open loop: sleep to the schedule, not until the last reply
        target = start + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        if not live.acquire(blocking=False):
            continue  # sender budget exhausted; drop, don't throttle
        thread = threading.Thread(
            target=_fire, args=(next(path_cycle),), daemon=True
        )
        thread.start()
        threads.append(thread)

    for thread in threads:
        thread.join(timeout=timeout + 5.0)
    return report


def cold_miss_convoy(
    host: str,
    port: int,
    path: str,
    *,
    n_clients: int,
    timeout: float = 30.0,
) -> List[RequestOutcome]:
    """Release ``n_clients`` onto the same cold path simultaneously.

    A barrier lines every client up before the first byte is sent, so
    all of them miss the result cache together — the convoy that
    single-flight coalescing exists to absorb (one evaluation, N
    answers).
    """
    barrier = threading.Barrier(n_clients)
    outcomes: List[Optional[RequestOutcome]] = [None] * n_clients

    def _client(slot: int) -> None:
        barrier.wait()
        outcomes[slot] = _one_request(
            host, port, path, timeout=timeout
        )

    threads = [
        threading.Thread(target=_client, args=(i,), daemon=True)
        for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout + 5.0)
    return [o for o in outcomes if o is not None]


def closed_loop_clients(
    host: str,
    port: int,
    paths: List[str],
    *,
    n_clients: int,
    requests_per_client: int,
    timeout: float = 30.0,
    path_for: Optional[Callable[[int, int], str]] = None,
) -> List[RequestOutcome]:
    """``n_clients`` threads, each sending its requests back to back.

    The workhorse for tail-latency measurement: client ``c`` sends
    request ``r`` as ``paths[(c * requests_per_client + r) % len]``
    (or whatever ``path_for(c, r)`` returns), waiting for each answer
    before the next — so latencies reflect service time plus queueing,
    not generator backlog.
    """
    outcomes: List[RequestOutcome] = []
    lock = threading.Lock()

    def _client(slot: int) -> None:
        for r in range(requests_per_client):
            if path_for is not None:
                path = path_for(slot, r)
            else:
                path = paths[(slot * requests_per_client + r) % len(paths)]
            outcome = _one_request(host, port, path, timeout=timeout)
            with lock:
                outcomes.append(outcome)

    threads = [
        threading.Thread(target=_client, args=(i,), daemon=True)
        for i in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout * requests_per_client + 10.0)
    return outcomes
