"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table (numbers right-aligned)."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append(
            [
                f"{cell:,.1f}" if isinstance(cell, float)
                else f"{cell:,}" if isinstance(cell, int)
                else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> None:
    print(format_table(headers, rows, title=title))
    print()
