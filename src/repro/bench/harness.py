"""Experiment runners regenerating the paper's Section 7 results.

Every runner returns structured rows so pytest-benchmark wrappers,
``python -m repro.bench`` and EXPERIMENTS.md all consume the same code.

Scaling note: the paper's partition limits are absolute (``Px`` = x*10^4
elements against a 169k-element DBLP subset; ``Nx`` = x*10^5 closure
connections against a 345M-connection closure). At laptop scale the
absolute numbers are meaningless, so the sweeps use the *fractions* the
labels correspond to and report the concrete limits used.
"""

from __future__ import annotations

import math
import random
import statistics
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.trajectory import anchored_trajectory_path, append_trajectory
from repro.bench.workloads import bench_dblp, bench_inex
from repro.core.cover_builder import build_cover
from repro.core.hopi import HopiIndex, convert_cover
from repro.core.maintenance import (
    delete_document,
    document_separates,
    insert_document,
)
from repro.core.stats import compression_ratio
from repro.graph.closure import transitive_closure, transitive_closure_size
from repro.graph.traversal import is_reachable
from repro.xmlmodel.export import collection_size_bytes
from repro.xmlmodel.model import Collection


# ---------------------------------------------------------------------------
# Table 1 — collection features
# ---------------------------------------------------------------------------

#: The paper's Table 1 reference values.
PAPER_TABLE1 = {
    "DBLP": dict(docs=6_210, elements=168_991, links=25_368, size_mb=13.2),
    "INEX": dict(docs=12_232, elements=12_061_348, links=408_085, size_mb=534.0),
}


def run_table1() -> List[Dict[str, object]]:
    """Regenerate Table 1 for the benchmark workloads."""
    rows = []
    for name, collection in (("DBLP", bench_dblp()), ("INEX", bench_inex())):
        paper = PAPER_TABLE1[name]
        rows.append(
            {
                "collection": name,
                "docs": collection.num_documents,
                "elements": collection.num_elements,
                "links": collection.num_links,
                "size_mb": collection_size_bytes(collection) / 1e6,
                "elements_per_doc": collection.num_elements
                / collection.num_documents,
                "paper_docs": paper["docs"],
                "paper_elements_per_doc": paper["elements"] / paper["docs"],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 2 — index build time and size
# ---------------------------------------------------------------------------


@dataclass
class BuildRow:
    """One row of Table 2."""

    label: str
    seconds: float
    cover_size: int
    compression: float
    num_partitions: int
    partition_limit: Optional[int] = None
    parallel_makespan: float = 0.0

    def as_tuple(self) -> Tuple[object, ...]:
        return (
            self.label,
            round(self.seconds, 2),
            self.cover_size,
            round(self.compression, 1),
            self.num_partitions,
        )


def run_build(
    collection: Collection,
    label: str,
    *,
    closure_connections: Optional[int] = None,
    **build_kwargs,
) -> BuildRow:
    """Run one index build and produce a Table-2 row."""
    if closure_connections is None:
        closure_connections = transitive_closure_size(collection.element_graph())
    index = HopiIndex.build(collection, **build_kwargs)
    stats = index.stats
    return BuildRow(
        label=label,
        seconds=stats.seconds_total,
        cover_size=stats.cover_size,
        compression=compression_ratio(closure_connections, stats.cover_size),
        num_partitions=stats.num_partitions,
        partition_limit=build_kwargs.get("partition_limit"),
        parallel_makespan=stats.parallel_makespan,
    )


#: Fractions of the element count corresponding to the paper's Px labels
#: (x * 10^4 elements of 169k); chosen to reproduce the U-shape of cover
#: size over partition granularity.
P_SERIES = {"P5": 0.03, "P10": 0.06, "P20": 0.12, "P50": 0.30}

#: Fractions of the closure size corresponding to the Nx labels
#: (x * 10^5 connections of 345M, scaled up to stay non-degenerate).
N_SERIES = {"N10": 0.003, "N25": 0.007, "N50": 0.015, "N100": 0.030}


def run_table2(
    collection: Optional[Collection] = None,
    *,
    include_unpartitioned: bool = True,
    seed: int = 0,
) -> List[BuildRow]:
    """Regenerate Table 2: baseline, P-series, single, N-series.

    The ``baseline`` row is the original algorithm (old partitioner +
    old incremental join); P rows are the old partitioner with the new
    recursive join; ``single`` is one-document partitions; N rows are
    the new closure-size-aware partitioner with the new join. The
    unpartitioned global cover (Section 7.2's in-text baseline) is
    appended last when requested.
    """
    collection = collection or bench_dblp()
    closure_connections = transitive_closure_size(collection.element_graph())
    rows: List[BuildRow] = []

    baseline_limit = max(int(collection.num_elements * P_SERIES["P10"]), 1)
    rows.append(
        run_build(
            collection,
            "baseline",
            closure_connections=closure_connections,
            strategy="incremental",
            partitioner="node_weight",
            partition_limit=baseline_limit,
            seed=seed,
        )
    )
    for label, fraction in P_SERIES.items():
        limit = max(int(collection.num_elements * fraction), 1)
        rows.append(
            run_build(
                collection,
                label,
                closure_connections=closure_connections,
                strategy="recursive",
                partitioner="node_weight",
                partition_limit=limit,
                seed=seed,
            )
        )
    rows.append(
        run_build(
            collection,
            "single",
            closure_connections=closure_connections,
            strategy="recursive",
            partitioner="single",
            seed=seed,
        )
    )
    for label, fraction in N_SERIES.items():
        limit = max(int(closure_connections * fraction), 100)
        rows.append(
            run_build(
                collection,
                label,
                closure_connections=closure_connections,
                strategy="recursive",
                partitioner="closure",
                partition_limit=limit,
                seed=seed,
            )
        )
    if include_unpartitioned:
        rows.append(
            run_build(
                collection,
                "global (7.2)",
                closure_connections=closure_connections,
                strategy="unpartitioned",
            )
        )
    return rows


#: Table 2 as printed in the paper (time in seconds, size in entries).
PAPER_TABLE2 = {
    "baseline": (11_400.0, 15_976_677, 21.6),
    "P5": (820.8, 9_980_892, 34.6),
    "P10": (1_198.2, 10_002_244, 34.5),
    "P20": (2_286.8, 11_646_499, 29.6),
    "P50": (7_835.8, 12_033_309, 28.7),
    "single": (22_778.0, 12_384_432, 27.9),
    "N10": (1_359.7, 9_999_052, 34.5),
    "N25": (2_368.3, 10_601_986, 32.5),
    "N50": (3_635.8, 10_274_871, 33.6),
    "N100": (6_118.9, 12_777_218, 27.0),
    "global (7.2)": (163_380.0, 1_289_930, 267.0),
}


# ---------------------------------------------------------------------------
# Section 7.3 — index maintenance
# ---------------------------------------------------------------------------


@dataclass
class MaintenanceRow:
    """Aggregated maintenance measurements (Section 7.3)."""

    collection: str
    separating_fraction: float
    avg_separator_test_seconds: float
    avg_separating_delete_seconds: float
    avg_nonseparating_delete_seconds: Optional[float]
    rebuild_seconds: float
    samples: int


def run_maintenance_experiment(
    collection: Collection,
    *,
    name: str = "DBLP",
    sample_size: int = 20,
    seed: int = 7,
) -> MaintenanceRow:
    """Measure the separator-test fraction and deletion costs.

    The paper reports: ~60% of DBLP documents separate the collection;
    testing takes ~2 s and the separating delete ~13 s; non-separating
    deletes can cost more than a rebuild. Every deletion here runs on a
    fresh copy of the index (cheap at bench scale) so the samples are
    independent.
    """
    rng = random.Random(seed)
    docs = sorted(collection.documents)
    sample = rng.sample(docs, min(sample_size, len(docs)))

    t0 = time.perf_counter()
    base_cover = build_cover(collection.element_graph())
    rebuild_seconds = time.perf_counter() - t0

    test_times: List[float] = []
    separating: List[str] = []
    non_separating: List[str] = []
    for doc_id in sample:
        t0 = time.perf_counter()
        result = document_separates(collection, doc_id)
        test_times.append(time.perf_counter() - t0)
        (separating if result else non_separating).append(doc_id)

    def deletion_time(doc_id: str) -> float:
        # operate on copies: the experiment must not consume the input
        scratch = collection.subcollection(collection.documents)
        scratch_cover = base_cover.copy()
        report = delete_document(scratch, scratch_cover, doc_id)
        return report.seconds

    sep_times = [deletion_time(d) for d in separating[:10]]
    nonsep_times = [deletion_time(d) for d in non_separating[:5]]

    return MaintenanceRow(
        collection=name,
        separating_fraction=len(separating) / len(sample),
        avg_separator_test_seconds=statistics.mean(test_times),
        avg_separating_delete_seconds=(
            statistics.mean(sep_times) if sep_times else 0.0
        ),
        avg_nonseparating_delete_seconds=(
            statistics.mean(nonsep_times) if nonsep_times else None
        ),
        rebuild_seconds=rebuild_seconds,
        samples=len(sample),
    )


def run_insert_document_experiment(
    collection: Collection, *, n_inserts: int = 10, seed: int = 3
) -> Dict[str, float]:
    """Section 6.1: insertion cost of new cited/citing documents."""
    rng = random.Random(seed)
    scratch = collection.subcollection(collection.documents)
    cover = build_cover(scratch.element_graph())
    docs = sorted(scratch.documents)
    times: List[float] = []
    for i in range(n_inserts):
        doc_id = f"bench-insert-{i}"
        root = scratch.new_document(doc_id, "article")
        cite = scratch.add_child(root.eid, "cite")
        target = scratch.documents[rng.choice(docs)].root
        scratch.add_link(cite.eid, target)
        report = insert_document(scratch, cover, doc_id)
        times.append(report.seconds)
    return {
        "avg_seconds": statistics.mean(times),
        "max_seconds": max(times),
        "inserts": float(n_inserts),
    }


# ---------------------------------------------------------------------------
# Section 5 — distance overhead; Section 4.2/4.3 ablations
# ---------------------------------------------------------------------------


def run_distance_overhead(collection: Collection) -> Dict[str, float]:
    """Space/time overhead of distance-aware labels (the abstract claims
    'low space overhead for including distance information')."""
    t0 = time.perf_counter()
    plain = HopiIndex.build(
        collection, strategy="recursive", partitioner="node_weight",
        partition_limit=max(collection.num_elements // 16, 1),
    )
    plain_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    dist = HopiIndex.build(
        collection, strategy="recursive", partitioner="node_weight",
        partition_limit=max(collection.num_elements // 16, 1),
        distance=True,
    )
    dist_seconds = time.perf_counter() - t0
    return {
        "plain_size": float(plain.cover.size),
        "distance_size": float(dist.cover.size),
        "entry_overhead": dist.cover.size / max(plain.cover.size, 1),
        # a distance entry stores 3 ints vs 2 (Section 5.1's DIST column)
        "byte_overhead": (3 * dist.cover.size) / max(2 * plain.cover.size, 1),
        "plain_seconds": plain_seconds,
        "distance_seconds": dist_seconds,
    }


def run_center_preselection_ablation(collection: Collection) -> Dict[str, int]:
    """Section 4.2: preselecting link targets as centers shrinks the
    joined cover ('about 10,000 entries less' — marginal)."""
    kwargs = dict(
        strategy="recursive",
        partitioner="node_weight",
        partition_limit=max(int(collection.num_elements * 0.06), 1),
    )
    with_pre = HopiIndex.build(collection, preselect_centers=True, **kwargs)
    without = HopiIndex.build(collection, preselect_centers=False, **kwargs)
    return {
        "with_preselection": with_pre.cover.size,
        "without_preselection": without.cover.size,
        "entries_saved": without.cover.size - with_pre.cover.size,
    }


def run_edge_weight_ablation(collection: Collection) -> List[BuildRow]:
    """Section 4.3: #links vs A*D vs A+D edge weights for the new
    partitioner ('the new partitioning algorithm in combination with
    edge weights set to A*D gave similar results to the old one')."""
    closure_connections = transitive_closure_size(collection.element_graph())
    limit = max(int(closure_connections * N_SERIES["N25"]), 100)
    rows = []
    for mode in ("links", "AxD", "A+D"):
        rows.append(
            run_build(
                collection,
                f"N25/{mode}",
                closure_connections=closure_connections,
                strategy="recursive",
                partitioner="closure",
                partition_limit=limit,
                edge_weight=mode,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# query performance (covered by [26]; reproduced as E16)
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# label-backend comparison (descendant-step workload) + BENCH trajectory
# ---------------------------------------------------------------------------


@dataclass
class BackendQueryRow:
    """Per-backend measurements of the descendant-step workload."""

    backend: str
    queries: int
    candidates: int
    p50_ms: float
    p95_ms: float
    total_seconds: float
    cover_entries: int
    stored_integers: int


def descendant_step_workload(
    collection: Collection, *, n_sources: int = 100, seed: int = 11
) -> Tuple[List[int], List[int]]:
    """The canonical descendant-step workload: ``(sources, candidates)``.

    Sources are randomly sampled document roots; candidates are all
    elements of the collection's most frequent tag — exactly the batch
    shape the query engine produces for every ``//a//b`` step. Shared
    by the harness and the pytest benchmarks so both always measure the
    same workload.
    """
    tag_index = collection.tags()
    _, candidates = max(tag_index.items(), key=lambda kv: (len(kv[1]), kv[0]))
    rng = random.Random(seed)
    roots = sorted(d.root for d in collection.documents.values())
    sources = [rng.choice(roots) for _ in range(n_sources)]
    return sources, sorted(candidates)


def measure_backend_cell(
    base: HopiIndex,
    collection: Collection,
    sources: Sequence[int],
    candidates: Sequence[int],
    backend: str,
) -> Tuple[BackendQueryRow, List[List[bool]]]:
    """One ``descendant-step x backend`` matrix cell.

    The cover is converted (never rebuilt) from ``base`` so the
    measurement isolates the representation; returns the timing row
    plus the raw answers so the caller can cross-check backends
    bit-for-bit (a perf win that changes answers is a bug, not a win).
    """
    cover = convert_cover(base.cover, backend)
    index = HopiIndex(collection, cover)
    # warm per-backend lazy state (the vector backend seals its CSR
    # slabs on the first probe; billing the one-off seal to the
    # first source would distort the latency percentiles)
    index.connected_many(sources[0], candidates)
    latencies: List[float] = []
    got: List[List[bool]] = []
    t_total = time.perf_counter()
    for s in sources:
        t0 = time.perf_counter()
        got.append(index.connected_many(s, candidates))
        latencies.append(time.perf_counter() - t0)
    total = time.perf_counter() - t_total
    latencies.sort()
    n = len(latencies)
    p50 = latencies[n // 2]
    p95 = latencies[min(n - 1, max(0, math.ceil(n * 0.95) - 1))]  # nearest rank
    row = BackendQueryRow(
        backend=backend,
        queries=len(sources),
        candidates=len(candidates),
        p50_ms=p50 * 1e3,
        p95_ms=p95 * 1e3,
        total_seconds=total,
        cover_entries=cover.size,
        stored_integers=cover.stored_integers(),
    )
    return row, got


def run_backend_query_benchmark(
    collection: Collection,
    *,
    backends: Sequence[str] = ("sets", "arrays"),
    n_sources: int = 100,
    seed: int = 11,
) -> Dict[str, BackendQueryRow]:
    """Compare label backends on the descendant-step workload.

    The workload mirrors what the query engine does for every
    ``//a//b`` step: one source element probed against the full
    candidate list of the next element test (the most frequent tag in
    the collection) via ``connected_many``. The covers are *identical*
    across backends (one build, converted), so the measurement isolates
    the representation. The matrix runner drives the same
    :func:`measure_backend_cell` core one backend-cell at a time.
    """
    base = HopiIndex.build(
        collection, strategy="recursive", partitioner="node_weight",
        partition_limit=max(collection.num_elements // 16, 1),
    )
    sources, candidates = descendant_step_workload(
        collection, n_sources=n_sources, seed=seed
    )

    results: Dict[str, BackendQueryRow] = {}
    answers: Dict[str, List[List[bool]]] = {}
    for backend in backends:
        results[backend], answers[backend] = measure_backend_cell(
            base, collection, sources, candidates, backend
        )
    # all backends must agree bit-for-bit (hard error: this guards the
    # BENCH_query.json acceptance record even under python -O)
    first = answers[backends[0]]
    for backend in backends[1:]:
        if answers[backend] != first:
            raise RuntimeError(
                f"backend {backend!r} answers diverge from {backends[0]!r}"
            )
    return results


@dataclass
class PlannerQueryRow:
    """Planned vs naive evaluation of the selective-tail workload."""

    backend: str
    path: str
    matches: int
    naive_seconds: float
    planned_seconds: float
    speedup: float


def run_planner_benchmark(
    collection: Optional[Collection] = None,
    *,
    backends: Sequence[str] = ("sets", "arrays"),
    path: Optional[str] = None,
    repeats: int = 3,
) -> Dict[str, PlannerQueryRow]:
    """Selective-tail workload: planned join order vs naive left-to-right.

    The query (default ``//*//erratum`` over
    :func:`~repro.bench.workloads.bench_dblp_selective`) has an
    unselective head and a rare tail. The naive order issues one
    forward ``connected_many`` probe per head element; the
    selectivity-driven planner seeds at the tail and resolves the join
    with a handful of backward ``ancestors``-side probes. Results are
    asserted identical (bindings *and* scores) before any timing is
    recorded — a plan that changes answers is a bug, not a win.
    """
    from repro.bench.workloads import SELECTIVE_RARE_TAG, bench_dblp_selective
    from repro.query.engine import QueryEngine

    if collection is None:
        collection = bench_dblp_selective()
    if path is None:
        path = f"//*//{SELECTIVE_RARE_TAG}"
    base = HopiIndex.build(
        collection, strategy="recursive", partitioner="node_weight",
        partition_limit=max(collection.num_elements // 16, 1),
    )

    results: Dict[str, PlannerQueryRow] = {}
    reference: Optional[List[Tuple[tuple, float]]] = None
    for backend in backends:
        results[backend], answers = measure_planner_cell(
            base, collection, path, backend, repeats=repeats
        )
        if reference is None:
            reference = answers
        elif answers != reference:
            raise RuntimeError(
                f"backend {backend!r} answers diverge on the planner workload"
            )
    return results


def measure_planner_cell(
    base: HopiIndex,
    collection: Collection,
    path: str,
    backend: str,
    *,
    repeats: int = 3,
) -> Tuple[PlannerQueryRow, List[Tuple[tuple, float]]]:
    """One ``selective-tail x backend`` matrix cell.

    Times the naive and the planned join order over the same converted
    cover; planned-vs-naive answer identity is a hard precondition
    (checked here, before any timing is kept), and the returned answer
    list lets the caller cross-check backends against each other.
    """
    from repro.query.engine import QueryEngine

    index = HopiIndex(collection, convert_cover(base.cover, backend))
    engine = QueryEngine(index, max_results=10**9)
    timings: Dict[str, float] = {}
    answers: Dict[str, List[Tuple[tuple, float]]] = {}
    for order in ("naive", "selective"):
        engine.evaluate(path, order=order)  # warm candidate memos
        best = math.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            rows = engine.evaluate(path, order=order)
            best = min(best, time.perf_counter() - t0)
        timings[order] = best
        answers[order] = [(r.bindings, r.score) for r in rows]
    if answers["naive"] != answers["selective"]:
        raise RuntimeError(
            f"planner changed answers on backend {backend!r}"
        )
    row = PlannerQueryRow(
        backend=backend,
        path=path,
        matches=len(answers["naive"]),
        naive_seconds=timings["naive"],
        planned_seconds=timings["selective"],
        speedup=round(
            timings["naive"] / max(timings["selective"], 1e-9), 2
        ),
    )
    return row, answers["naive"]


@dataclass
class TopKQueryRow:
    """Bounded-heap vs full-materialise ranked evaluation."""

    backend: str
    path: str
    limit: int
    matches: int
    full_seconds: float
    heap_seconds: float
    speedup: float


def run_topk_benchmark(
    collection: Optional[Collection] = None,
    *,
    backend: str = "arrays",
    path: Optional[str] = None,
    limit: int = 10,
    repeats: int = 3,
) -> TopKQueryRow:
    """Ranked top-k workload: heap streaming vs full materialisation.

    The query produces a *large* result set (default: a wildcard head
    into the collection's most frequent tag) but only the top ``limit``
    ranked results are wanted. The unlimited evaluation materialises
    and sorts every match; appending ``limit N`` routes ``evaluate``
    through the bounded heap. Answers are asserted identical (the heap
    path is provably the same top window) before any timing is kept.
    """
    if collection is None:
        collection = bench_dblp()
    if path is None:
        tag_index = collection.tags()
        top_tag, _ = max(
            tag_index.items(), key=lambda kv: (len(kv[1]), kv[0])
        )
        path = f"//*//{top_tag}"
    index = HopiIndex.build(
        collection, strategy="recursive", partitioner="node_weight",
        partition_limit=max(collection.num_elements // 16, 1),
        backend=backend,
    )
    from repro.query.engine import QueryEngine

    engine = QueryEngine(index, max_results=10**9)
    limited = f"{path} limit {limit}"

    def best_of(fn) -> float:
        best = math.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    full = engine.evaluate(path)  # warm memos (and the reference answer)
    heap = engine.evaluate(limited)
    if [(r.bindings, r.score) for r in heap] != [
        (r.bindings, r.score) for r in full[:limit]
    ]:
        raise RuntimeError(
            f"heap top-k answers diverge from the full sort on {path!r}"
        )
    full_seconds = best_of(lambda: engine.evaluate(path))
    heap_seconds = best_of(lambda: engine.evaluate(limited))
    return TopKQueryRow(
        backend=backend,
        path=path,
        limit=limit,
        matches=len(full),
        full_seconds=full_seconds,
        heap_seconds=heap_seconds,
        speedup=round(full_seconds / max(heap_seconds, 1e-9), 2),
    )


def default_trajectory_path() -> Path:
    """The repo-root (or cwd) ``BENCH_query.json`` path."""
    return anchored_trajectory_path("BENCH_query.json")


def emit_bench_query_entry(
    rows: Dict[str, BackendQueryRow],
    *,
    planner: Optional[Dict[str, PlannerQueryRow]] = None,
    topk: Optional[TopKQueryRow] = None,
    path: Union[str, Path, None] = None,
    collection_name: str = "DBLP",
    workload: str = "descendant-step",
) -> Dict[str, object]:
    """Append one trajectory entry to ``BENCH_query.json``.

    The file holds a JSON list; each run appends, so future PRs can
    diff latency and index size against history. ``planner`` adds the
    selective-tail planned-vs-naive comparison
    (:func:`run_planner_benchmark`); its headline
    ``speedup_planned_vs_naive`` is the arrays-backend figure.
    ``topk`` adds the ranked-topk heap-vs-full comparison
    (:func:`run_topk_benchmark`) with headline
    ``speedup_heap_vs_full``.
    """
    if path is None:
        path = default_trajectory_path()
    entry: Dict[str, object] = {
        "collection": collection_name,
        "workload": workload,
        "backends": {name: asdict(row) for name, row in rows.items()},
    }
    if "sets" in rows and "arrays" in rows:
        entry["speedup_arrays_vs_sets"] = round(
            rows["sets"].total_seconds / max(rows["arrays"].total_seconds, 1e-9), 2
        )
    if "arrays" in rows and "vector" in rows:
        entry["speedup_vector_vs_arrays"] = round(
            rows["arrays"].total_seconds / max(rows["vector"].total_seconds, 1e-9),
            2,
        )
    if planner:
        entry["planner"] = {
            "workload": "selective-tail",
            "backends": {
                name: asdict(row) for name, row in planner.items()
            },
        }
        headline = planner.get("arrays") or next(iter(planner.values()))
        entry["speedup_planned_vs_naive"] = headline.speedup
    if topk is not None:
        entry["topk"] = {"workload": "ranked-topk", **asdict(topk)}
        entry["speedup_heap_vs_full"] = topk.speedup
    return append_trajectory(path, entry)


def run_query_benchmark(
    collection: Collection, *, n_queries: int = 500, seed: int = 11
) -> Dict[str, float]:
    """Connection-test throughput: HOPI vs BFS vs materialised closure."""
    rng = random.Random(seed)
    graph = collection.element_graph()
    index = HopiIndex.build(
        collection, strategy="recursive", partitioner="node_weight",
        partition_limit=max(collection.num_elements // 16, 1),
    )
    closure = transitive_closure(graph)
    nodes = sorted(collection.elements)
    pairs = [
        (rng.choice(nodes), rng.choice(nodes)) for _ in range(n_queries)
    ]

    t0 = time.perf_counter()
    hopi_answers = [index.connected(u, v) for u, v in pairs]
    hopi_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    closure_answers = [closure.contains(u, v) for u, v in pairs]
    closure_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    bfs_answers = [is_reachable(graph, u, v) for u, v in pairs]
    bfs_seconds = time.perf_counter() - t0

    assert hopi_answers == closure_answers == bfs_answers
    return {
        "queries": float(n_queries),
        "hopi_seconds": hopi_seconds,
        "closure_seconds": closure_seconds,
        "bfs_seconds": bfs_seconds,
        "hopi_qps": n_queries / hopi_seconds,
        "bfs_qps": n_queries / bfs_seconds,
        "speedup_vs_bfs": bfs_seconds / hopi_seconds,
    }
