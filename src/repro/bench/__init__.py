"""Benchmark harness: workloads, experiment runners, table renderers.

``python -m repro.bench`` regenerates every table and in-text experiment
of the paper's Section 7 at laptop scale and prints them side by side
with the paper's reference values. The pytest-benchmark wrappers in
``benchmarks/`` drive the same harness functions.
"""

from repro.bench.workloads import bench_dblp, bench_inex, workload_scale
from repro.bench.build_bench import (
    emit_bench_build_entry,
    run_build_benchmark,
)
from repro.bench.harness import (
    BuildRow,
    MaintenanceRow,
    run_build,
    run_maintenance_experiment,
    run_table1,
    run_table2,
)
from repro.bench.reporting import format_table, print_table
from repro.bench.service_load import (
    emit_bench_service_entry,
    run_service_benchmark,
    service_query_mix,
)

__all__ = [
    "emit_bench_build_entry",
    "run_build_benchmark",
    "emit_bench_service_entry",
    "run_service_benchmark",
    "service_query_mix",
    "bench_dblp",
    "bench_inex",
    "workload_scale",
    "BuildRow",
    "MaintenanceRow",
    "run_build",
    "run_maintenance_experiment",
    "run_table1",
    "run_table2",
    "format_table",
    "print_table",
]
