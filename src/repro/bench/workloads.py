"""Benchmark workloads — scaled-down analogues of the paper's datasets.

The paper's DBLP subset (6,210 docs / 168,991 elements / 25,368 links)
and INEX (12,232 docs / 12.06M elements / no links) are reproduced in
*structural profile* at a scale pure Python can sweep in minutes. The
environment variable ``REPRO_BENCH_SCALE`` multiplies the default sizes
(e.g. ``REPRO_BENCH_SCALE=4`` runs 4x larger collections).

:func:`bench_inex_linked` adds the **join-heavy** variant: the same
deep INEX-like trees, citation-linked the way the paper links hybrid
web/intranet collections — deep elements referencing other documents'
roots. Link targets at roots make every cross-partition link fan out
to a whole document on the ``Lin`` side, so the cover join's
distribution step (the phase the parallel join shards) dominates the
join wall, mirroring the paper's "most of the time was spent joining
the covers" observation.
"""

from __future__ import annotations

import os
import random
from functools import lru_cache

from repro.bench.matrix import bench_seed
from repro.xmlmodel.generator import dblp_like, inex_like
from repro.xmlmodel.model import Collection

#: Default document counts; the paper's DBLP subset is ~20x the default
#: here, INEX is ~400x (but with ~986 elements/doc vs our 380).
DEFAULT_DBLP_DOCS = 300
DEFAULT_INEX_DOCS = 30
DEFAULT_INEX_ELEMENTS_PER_DOC = 380
#: mean outgoing citations per document of the linked-INEX variant
DEFAULT_INEX_LINKED_CITES = 48
#: bibliography elements carrying those citations, per document
DEFAULT_INEX_LINKED_BIBS = 6
#: one document in this many carries the rare tail tag of the
#: selective-tail planner workload
SELECTIVE_RARE_EVERY = 100
#: the rare tag itself (absent from the generators' vocabularies)
SELECTIVE_RARE_TAG = "erratum"


def workload_scale() -> float:
    """The ``REPRO_BENCH_SCALE`` multiplier (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def workload_seed() -> int:
    """The run's generator seed (``REPRO_BENCH_SEED``, default 2005).

    One seed threads through every synthetic collection here and every
    :mod:`repro.ingest.sources` generator, so a matrix run is
    reproducible end to end — ``python -m repro.bench all --seed N``
    sets it for the whole process.
    """
    return bench_seed()


@lru_cache(maxsize=8)
def bench_dblp(
    scale: float | None = None, seed: int | None = None
) -> Collection:
    """The DBLP-like benchmark collection (citation-linked, shallow docs)."""
    scale = workload_scale() if scale is None else scale
    seed = workload_seed() if seed is None else seed
    return dblp_like(max(int(DEFAULT_DBLP_DOCS * scale), 10), seed=seed)


@lru_cache(maxsize=8)
def bench_inex(
    scale: float | None = None, seed: int | None = None
) -> Collection:
    """The INEX-like benchmark collection (deep trees, no links)."""
    scale = workload_scale() if scale is None else scale
    seed = workload_seed() if seed is None else seed
    return inex_like(
        max(int(DEFAULT_INEX_DOCS * scale), 3),
        seed=seed,
        elements_per_doc=DEFAULT_INEX_ELEMENTS_PER_DOC,
    )


@lru_cache(maxsize=8)
def bench_dblp_selective(
    scale: float | None = None, seed: int | None = None
) -> Collection:
    """The DBLP-like collection with a **rare tail tag** planted.

    Every :data:`SELECTIVE_RARE_EVERY`-th document (at least two)
    gains one ``erratum`` child under its root — a tag that appears
    nowhere else, making ``//*//erratum`` the paper-motivated
    selective-*tail* query: the head step matches every element, the
    tail a handful. The left-to-right evaluator pays one forward probe
    per head binding; the selectivity-driven planner seeds at the tail
    and probes backward over the cover's ``ancestors`` side — the gap
    between the two is what ``BENCH_query.json``'s planner entry
    records.
    """
    scale = workload_scale() if scale is None else scale
    seed = workload_seed() if seed is None else seed
    collection = dblp_like(max(int(DEFAULT_DBLP_DOCS * scale), 10), seed=seed)
    docs = sorted(collection.documents)
    rare_docs = docs[:: SELECTIVE_RARE_EVERY] if len(docs) > 2 else docs[:2]
    if len(rare_docs) < 2:
        rare_docs = docs[:2]
    for doc_id in rare_docs:
        collection.add_child(collection.documents[doc_id].root,
                             SELECTIVE_RARE_TAG)
    return collection


@lru_cache(maxsize=8)
def bench_inex_linked(
    scale: float | None = None, seed: int | None = None
) -> Collection:
    """Deep INEX-like trees plus citation-style links — join-heavy.

    Every document (except the first) cites earlier documents from a
    handful of deep "bibliography" elements into the cited documents'
    *roots*, with a seeded RNG so the collection is identical across
    runs — the profile of the paper's hybrid intranet collections,
    where hub documents reference large parts of the corpus. Root
    targets fan every cross-partition link out to a whole document on
    the ``Lin`` side, and concentrating the link sources on a few deep
    elements per document keeps the PSG small while its ``H̄`` reach
    sets stay large — together they make the join's distribution step
    dominate the join wall, the phase the parallel join shards ("most
    of the time was spent joining the covers").
    """
    scale = workload_scale() if scale is None else scale
    seed = workload_seed() if seed is None else seed
    n_docs = max(int(DEFAULT_INEX_DOCS * scale), 4)
    collection = inex_like(
        n_docs,
        seed=seed,
        elements_per_doc=DEFAULT_INEX_ELEMENTS_PER_DOC,
    )
    rng = random.Random(seed)
    docs = sorted(collection.documents)
    elements_by_doc: dict = {d: [] for d in docs}
    for eid in sorted(collection.elements):
        elements_by_doc[collection.elements[eid].doc].append(eid)
    cites = DEFAULT_INEX_LINKED_CITES
    n_bib = DEFAULT_INEX_LINKED_BIBS
    for i, doc in enumerate(docs):
        if i == 0:
            continue
        members = elements_by_doc[doc]
        # a few deep bibliography elements carry all of the doc's cites
        step = max(len(members) // (n_bib + 1), 1)
        bib = [
            members[min((3 * len(members)) // 4 + k * step // 4,
                        len(members) - 1)]
            for k in range(n_bib)
        ]
        for _ in range(rng.randrange(cites // 2, 2 * cites)):
            cited = docs[rng.randrange(0, i)]
            target = collection.documents[cited].root
            collection.add_link(rng.choice(bib), target)
    return collection
