"""Benchmark workloads — scaled-down analogues of the paper's datasets.

The paper's DBLP subset (6,210 docs / 168,991 elements / 25,368 links)
and INEX (12,232 docs / 12.06M elements / no links) are reproduced in
*structural profile* at a scale pure Python can sweep in minutes. The
environment variable ``REPRO_BENCH_SCALE`` multiplies the default sizes
(e.g. ``REPRO_BENCH_SCALE=4`` runs 4x larger collections).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.xmlmodel.generator import dblp_like, inex_like
from repro.xmlmodel.model import Collection

#: Default document counts; the paper's DBLP subset is ~20x the default
#: here, INEX is ~400x (but with ~986 elements/doc vs our 380).
DEFAULT_DBLP_DOCS = 300
DEFAULT_INEX_DOCS = 30
DEFAULT_INEX_ELEMENTS_PER_DOC = 380


def workload_scale() -> float:
    """The ``REPRO_BENCH_SCALE`` multiplier (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@lru_cache(maxsize=4)
def bench_dblp(scale: float | None = None) -> Collection:
    """The DBLP-like benchmark collection (citation-linked, shallow docs)."""
    scale = workload_scale() if scale is None else scale
    return dblp_like(max(int(DEFAULT_DBLP_DOCS * scale), 10), seed=2005)


@lru_cache(maxsize=4)
def bench_inex(scale: float | None = None) -> Collection:
    """The INEX-like benchmark collection (deep trees, no links)."""
    scale = workload_scale() if scale is None else scale
    return inex_like(
        max(int(DEFAULT_INEX_DOCS * scale), 3),
        seed=2005,
        elements_per_doc=DEFAULT_INEX_ELEMENTS_PER_DOC,
    )
